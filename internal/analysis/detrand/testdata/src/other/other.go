// Package other is the detrand negative fixture: it is not one of the
// deterministic core packages, so global randomness stays allowed here.
package other

import (
	"math/rand"
	"time"
)

func jitter() time.Duration {
	return time.Duration(rand.Intn(100)) * time.Millisecond
}

func now() time.Time {
	return time.Now()
}

func snooze() {
	time.Sleep(time.Millisecond)
}
