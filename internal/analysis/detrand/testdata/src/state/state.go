// Package state is a detrand positive fixture: its name is in the
// deterministic core set, so global randomness and wall-clock reads are
// reported.
package state

import (
	"math/rand"
	"time"
)

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the global math/rand source`
}

func pick(n int) int {
	return rand.Intn(n) // want `rand\.Intn draws from the global math/rand source`
}

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in a deterministic package`
}

func nap() {
	time.Sleep(time.Millisecond) // want `time\.Sleep schedules on the wall clock`
}

func later(fn func()) *time.Timer {
	return time.AfterFunc(time.Second, fn) // want `time\.AfterFunc schedules on the wall clock`
}

func deadline() <-chan time.Time {
	return time.After(time.Second) // want `time\.After schedules on the wall clock`
}

func ticker() *time.Timer {
	return time.NewTimer(time.Second) // want `time\.NewTimer schedules on the wall clock`
}

// seeded is the sanctioned pattern: constructors are allowed, and
// methods on an injected *rand.Rand are always fine.
func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// elapsed uses an injected clock, not the wall clock.
func elapsed(clock func() time.Time) time.Duration {
	return clock().Sub(time.Unix(0, 0))
}

// suppressed documents a justified exception.
func suppressed() int {
	//hfcvet:ignore detrand jitter only affects log readability, not results
	return rand.Intn(10)
}
