package detrand_test

import (
	"testing"

	"hfc/internal/analysis/analysistest"
	"hfc/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrand.Analyzer, "state", "other")
}
