// Package maporder defines an Analyzer that flags `range` over maps in
// the deterministic core packages when the iteration order can leak into
// an observable result.
//
// Go randomizes map iteration order per run. The detrand analyzer keeps
// ambient randomness (global rand, wall clocks) out of the simulation
// core, but a map range is a randomness source the v1 pass could not
// see: the experiment tables are only reproducible if no map-ordered
// value reaches a result. Within the configured packages this analyzer
// reports a map range whose body lets the order escape through:
//
//   - a channel send (flood payloads, worker feeds);
//   - a return whose value derives from the iteration variables — which
//     iteration returns first depends on the order;
//   - a plain assignment to a variable declared outside the loop whose
//     right-hand side derives from the iteration (last writer wins);
//   - a non-commutative compound accumulation: floating-point or complex
//     `+=`-style updates (rounding differs with order) and string
//     concatenation;
//   - an append to an outer slice — unless some path after the loop
//     sorts that slice before it can be used (the collect-then-sort
//     idiom), which the control-flow graph check recognizes.
//
// Commutative updates stay allowed: keyed writes (m2[k] = v), integer
// counters and sums, boolean flags set to constants, delete(m, k).
//
// Suppress an intentional site with
//
//	//hfcvet:ignore maporder <why the order cannot be observed>
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"hfc/internal/analysis/detrand"
	"hfc/internal/analysis/flowgraph"
	"hfc/internal/analysis/ignore"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map ranges in deterministic packages whose iteration order can reach an observable result",
	Run:  run,
}

var packagesFlag string

func init() {
	Analyzer.Flags.StringVar(&packagesFlag, "packages", detrand.DefaultPackages,
		"comma-separated package names that must stay deterministic")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !deterministic(pass.Pkg.Name()) {
		return nil, nil
	}
	dirs := ignore.Parse(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, dirs, fn.Body)
				}
				return false // nested literals are found inside checkBody
			case *ast.FuncLit:
				// Top-level var initializers only; function-local literals
				// are reached through their enclosing declaration.
				checkBody(pass, dirs, fn.Body)
				return false
			}
			return true
		})
	}
	dirs.ReportUnused(pass)
	return nil, nil
}

func deterministic(name string) bool {
	name = strings.TrimSuffix(name, "_test")
	for _, p := range strings.Split(packagesFlag, ",") {
		if strings.TrimSpace(p) == name {
			return true
		}
	}
	return false
}

// checkBody scans one function body (and, recursively, literals declared
// in it — they share the body's control-flow graph scope only when
// invoked inline, so each gets its own graph).
func checkBody(pass *analysis.Pass, dirs *ignore.Directives, body *ast.BlockStmt) {
	var g *flowgraph.Graph // built lazily; only append sinks query it
	graph := func() *flowgraph.Graph {
		if g == nil {
			g = flowgraph.New(body)
		}
		return g
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkBody(pass, dirs, n.Body)
			return false
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					checkRange(pass, dirs, body, graph, n)
				}
			}
		}
		return true
	})
}

// checkRange reports every order-sensitive sink in one map range body.
func checkRange(pass *analysis.Pass, dirs *ignore.Directives, fnBody *ast.BlockStmt, graph func() *flowgraph.Graph, rs *ast.RangeStmt) {
	taint := taintSet(pass, rs)
	tainted := func(e ast.Expr) bool { return refsTaint(pass, taint, rs, e) }
	reductions := maxMinUpdates(rs.Body)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A literal defined per iteration runs later (or concurrently);
			// its own map ranges are checked separately, and flows through
			// it are beyond the may-analysis here.
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			dirs.Report(pass, n.Arrow,
				"map iteration order reaches a channel send; iterate over sorted keys")
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if tainted(res) {
					dirs.Report(pass, n.Return,
						"map iteration order can determine the return value; iterate over sorted keys")
					break
				}
			}
		case *ast.AssignStmt:
			if reductions[n] {
				return true // commutative max/min fold: order-independent
			}
			checkAssign(pass, dirs, fnBody, graph, rs, n, tainted)
		}
		return true
	})
}

// maxMinUpdates finds the commutative fold idiom
//
//	if v > best { best = v }
//
// and marks the inner assignment as order-independent: whatever order the
// map yields, the final best is the extremum. Only the assignment whose
// operands are exactly the compared pair qualifies — an argmax companion
// (bestKey = k on the same branch) stays flagged, because ties make the
// winning key order-dependent.
func maxMinUpdates(body *ast.BlockStmt) map[*ast.AssignStmt]bool {
	out := map[*ast.AssignStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch cond.Op {
		case token.GTR, token.LSS, token.GEQ, token.LEQ:
		default:
			return true
		}
		condX, condY := types.ExprString(cond.X), types.ExprString(cond.Y)
		for _, s := range ifs.Body.List {
			as, ok := s.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			lhs, rhs := types.ExprString(as.Lhs[0]), types.ExprString(as.Rhs[0])
			if (lhs == condY && rhs == condX) || (lhs == condX && rhs == condY) {
				out[as] = true
			}
		}
		return true
	})
	return out
}

// checkAssign classifies one assignment inside a map range body.
func checkAssign(pass *analysis.Pass, dirs *ignore.Directives, fnBody *ast.BlockStmt, graph func() *flowgraph.Graph, rs *ast.RangeStmt, as *ast.AssignStmt, tainted func(ast.Expr) bool) {
	if as.Tok == token.DEFINE {
		return // new variable scoped to the iteration
	}
	for i, lhs := range as.Lhs {
		root := rootIdent(lhs)
		if root == nil {
			continue
		}
		if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); isIndex {
			continue // keyed write: m2[k] = v is commutative across iterations
		}
		obj := pass.TypesInfo.ObjectOf(root)
		if obj == nil || insideLoop(rs, obj.Pos()) {
			continue // iteration-local state
		}
		var rhs ast.Expr
		if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		} else if i < len(as.Rhs) {
			rhs = as.Rhs[i]
		}
		if rhs == nil || !tainted(rhs) {
			continue // constant or outer-only value: same on every order
		}

		if as.Tok == token.ASSIGN {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isAppend(pass, call) {
				if sortedAfter(pass, fnBody, graph, rs, obj) {
					continue // collect-then-sort idiom
				}
				dirs.Report(pass, as.TokPos,
					"append to %s in map iteration order; sort %s after the loop or iterate over sorted keys",
					root.Name, root.Name)
				continue
			}
			dirs.Report(pass, as.TokPos,
				"map iteration order can determine the value assigned to %s (last writer wins); iterate over sorted keys",
				root.Name)
			continue
		}

		// Compound assignment: only non-commutative accumulations matter.
		if b, ok := obj.Type().Underlying().(*types.Basic); ok {
			switch {
			case b.Info()&(types.IsFloat|types.IsComplex) != 0:
				dirs.Report(pass, as.TokPos,
					"floating-point accumulation into %s in map iteration order is not associative; iterate over sorted keys",
					root.Name)
			case b.Info()&types.IsString != 0 && as.Tok == token.ADD_ASSIGN:
				dirs.Report(pass, as.TokPos,
					"string concatenation into %s follows map iteration order; iterate over sorted keys",
					root.Name)
			}
		}
	}
}

// taintSet seeds the order-tainted objects: the range's key and value
// variables (in both := and = forms).
func taintSet(pass *analysis.Pass, rs *ast.RangeStmt) map[types.Object]bool {
	taint := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				taint[obj] = true
			}
		}
	}
	return taint
}

// refsTaint reports whether e references a tainted object: a range
// variable, or any variable declared inside the loop body (which holds
// per-iteration derived state).
func refsTaint(pass *analysis.Pass, taint map[types.Object]bool, rs *ast.RangeStmt, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return true
		}
		if taint[obj] {
			found = true
			return false
		}
		if _, isVar := obj.(*types.Var); isVar && insideLoop(rs, obj.Pos()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// insideLoop reports whether a declaration position falls in the range
// statement (body or its key/value defines).
func insideLoop(rs *ast.RangeStmt, pos token.Pos) bool {
	return rs.Pos() <= pos && pos <= rs.End()
}

// rootIdent unwraps selectors, stars and parens to the base identifier of
// an assignable expression; nil for index expressions' roots (handled
// separately) and anything else.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isAppend recognizes the append builtin.
func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether some path after the loop sorts the slice
// held by obj: a sort.* / slices.Sort* call whose first argument roots at
// obj (sort.Sort(byName(xs)) counts — the conversion still roots at xs),
// reachable from the loop's exit in the control-flow graph.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, graph func() *flowgraph.Graph, rs *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(pass, call) || len(call.Args) == 0 {
			return true
		}
		root := rootIdentExpr(call.Args[0])
		if root == nil || pass.TypesInfo.ObjectOf(root) != obj {
			return true
		}
		if graph().ReachesAfter(rs, call) {
			sorted = true
			return false
		}
		return true
	})
	return sorted
}

// rootIdentExpr digs to the base identifier through calls and conversions
// too (sort.Sort(byName(xs))).
func rootIdentExpr(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			if len(x.Args) != 1 {
				return nil
			}
			e = x.Args[0]
		default:
			return nil
		}
	}
}

// isSortCall recognizes sort.* and slices.Sort* calls.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pkg.Imported().Path() {
	case "sort":
		return true // every exported sort entry point sorts its argument
	case "slices":
		return strings.HasPrefix(sel.Sel.Name, "Sort")
	}
	return false
}
