package maporder_test

import (
	"testing"

	"hfc/internal/analysis/analysistest"
	"hfc/internal/analysis/detrand"
	"hfc/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	if err := maporder.Analyzer.Flags.Set("packages", "a"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := maporder.Analyzer.Flags.Set("packages", detrand.DefaultPackages); err != nil {
			t.Errorf("restore -packages: %v", err)
		}
	})
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer, "a")
}
