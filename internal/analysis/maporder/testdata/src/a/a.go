// Fixture a: order-sensitive sinks inside map ranges (positives) next to
// the commutative shapes that stay allowed (negatives).
package a

import "sort"

func sends(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `map iteration order reaches a channel send`
	}
}

func firstMatch(m map[string]int) string {
	for k, v := range m {
		if v > 0 {
			return k // want `map iteration order can determine the return value`
		}
	}
	return ""
}

func lastWriter(m map[string]int) string {
	var best string
	for k := range m {
		best = k // want `map iteration order can determine the value assigned to best`
	}
	return best
}

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum in map iteration order is not associative`
	}
	return sum
}

func concat(m map[string]int) string {
	var out string
	for k := range m {
		out += k // want `string concatenation into out follows map iteration order`
	}
	return out
}

func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys in map iteration order`
	}
	return keys
}

// sortedAppend is the sanctioned collect-then-sort idiom: the append is
// forgiven because the sort is reachable after the loop.
func sortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// commutative shapes: integer sums, counters, keyed writes, constant
// flag sets — all order-independent.
func counters(m map[string]int, target string) (int, int, bool) {
	n := 0
	total := 0
	seen := map[string]bool{}
	found := false
	for k, v := range m {
		n++
		total += v
		seen[k] = true
		if k == target {
			found = true
		}
	}
	return n, total, found
}

// derived per-iteration state taints too: name is declared inside the
// loop, so assigning it outward is still order-dependent.
func derivedTaint(m map[string]int) string {
	var last string
	for k, v := range m {
		name := k
		if v > 1 {
			last = name // want `map iteration order can determine the value assigned to last`
		}
	}
	return last
}

// maxFold is the commutative extremum idiom: allowed. The argmax
// companion assignment is still order-dependent (ties), so it reports.
func maxFold(m map[string]int) (int, string) {
	best := -1
	var bestKey string
	for k, v := range m {
		if v > best {
			best = v
			bestKey = k // want `map iteration order can determine the value assigned to bestKey`
		}
	}
	return best, bestKey
}

func suppressed(m map[string]int, ch chan string) {
	for k := range m {
		//hfcvet:ignore maporder fixture: the receiver sorts before use
		ch <- k
	}
}
