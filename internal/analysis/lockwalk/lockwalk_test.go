package lockwalk_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strconv"
	"testing"

	"golang.org/x/tools/go/analysis"

	"hfc/internal/analysis/lockwalk"
)

// heldAtProbes walks every function in src and returns, for each
// probe(N) call, the sorted held-lock keys at that point.
func heldAtProbes(t *testing.T, src string) map[int][]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pass := &analysis.Pass{
		Fset:      fset,
		Files:     []*ast.File{f},
		Pkg:       pkg,
		TypesInfo: info,
	}
	out := map[int][]string{}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		lockwalk.Walk(pass, fn.Body, func(n ast.Node, held lockwalk.Held) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "probe" || len(call.Args) != 1 {
				return
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return
			}
			n2, err := strconv.Atoi(lit.Value)
			if err != nil {
				t.Fatalf("probe arg: %v", err)
			}
			keys := make([]string, 0, len(held))
			for k := range held {
				keys = append(keys, k)
			}
			out[n2] = keys
		})
	}
	return out
}

// TestDeferredUnlockInLoop pins the held-set semantics of `defer
// mu.Unlock()` issued inside a loop body: the lock stays held for the
// rest of the iteration (the defer does not release it in-place), and
// loop-local acquisitions do not leak past the loop.
func TestDeferredUnlockInLoop(t *testing.T) {
	src := `package p

import "sync"

func probe(int) {}

func f(mu *sync.Mutex, xs []int) {
	probe(0)
	for range xs {
		mu.Lock()
		probe(1)
		defer mu.Unlock()
		probe(2)
	}
	probe(3)
}

func g(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	probe(4)
}
`
	held := heldAtProbes(t, src)
	wantHeld := map[int]bool{0: false, 1: true, 2: true, 3: false, 4: true}
	for probe, want := range wantHeld {
		got := len(held[probe]) > 0
		if got != want {
			t.Errorf("probe(%d): held=%v (%v), want held=%v", probe, got, held[probe], want)
		}
	}
	for _, p := range []int{1, 2, 4} {
		if len(held[p]) != 1 || held[p][0] != "mu" {
			t.Errorf("probe(%d): held keys = %v, want [mu]", p, held[p])
		}
	}
}
