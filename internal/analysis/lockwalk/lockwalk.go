// Package lockwalk walks a function body in source order while tracking
// which sync.Mutex / sync.RWMutex values are held at every point. It is
// the shared engine behind the lockscope and guardedby analyzers.
//
// The tracking is intra-procedural and deliberately conservative in the
// direction of fewer false positives:
//
//   - mu.Lock() / mu.RLock() adds mu to the held set; mu.Unlock() /
//     mu.RUnlock() removes it; `defer mu.Unlock()` keeps it held for the
//     rest of the function (the dominant idiom in this repo).
//   - Branch bodies (if/else, switch cases, select clauses, loop bodies)
//     run on a copy of the held set. After the construct, a lock is
//     dropped from the outer set if ANY branch released it, and locks
//     acquired inside a branch do not leak out.
//   - Function literals launched with `go` or `defer` start with an
//     empty held set (they run in another goroutine / after unlock).
//     Other function literals inherit the current held set: in this
//     codebase closures built under a lock (e.g. the providers callback
//     in overlay.solveChildLocal) are invoked synchronously while the
//     lock is still held.
//
// Mutexes are identified by the printed form of the receiver expression
// ("s.mu", "n.sys.statMu", ...), so aliasing through assignment is not
// tracked; that is the standard go/analysis trade-off for lock checkers.
package lockwalk

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Mode is how a lock is held.
type Mode int

const (
	// Read marks an RLock hold.
	Read Mode = iota + 1
	// Write marks an exclusive Lock hold (Mutex.Lock or RWMutex.Lock).
	Write
)

// Held maps a lock key (printed receiver expression, e.g. "s.mu") to the
// strongest mode it is currently held in.
type Held map[string]Mode

// clone copies a held set for a branch body.
func (h Held) clone() Held {
	c := make(Held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// Visitor receives every node reached during the walk together with the
// held set at that point. The map must not be retained or mutated.
type Visitor func(n ast.Node, held Held)

// Walk traverses body, calling visit for each expression and statement
// node encountered in source order with the locks held at that point.
func Walk(pass *analysis.Pass, body *ast.BlockStmt, visit Visitor) {
	w := &walker{pass: pass, visit: visit}
	w.stmts(body.List, Held{})
}

// LockKey returns the tracking key for the receiver of a Lock/Unlock
// style call, e.g. "s.mu" for s.mu.Lock(). The second result is false
// when call is not a method call on a sync mutex.
func LockKey(pass *analysis.Pass, call *ast.CallExpr) (key, method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if !isMutex(pass.TypesInfo.TypeOf(sel.X)) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// isMutex reports whether t is (a pointer to) sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

type walker struct {
	pass  *analysis.Pass
	visit Visitor
}

// stmts walks a statement list, threading the held set through it.
func (w *walker) stmts(list []ast.Stmt, held Held) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

// branch walks a nested body on a copy of held and then removes from the
// outer set every lock the branch released — unless the branch cannot
// fall through (it ends in return/break/continue/goto/panic), in which
// case its lock transitions never reach the code after the construct.
// This keeps the ubiquitous early-return idiom precise:
//
//	mu.Lock()
//	if bad { mu.Unlock(); return err }
//	...   // mu still held here
func (w *walker) branch(list []ast.Stmt, held Held) {
	inner := held.clone()
	w.stmts(list, inner)
	if terminates(list) {
		return
	}
	for k := range held {
		if _, still := inner[k]; !still {
			delete(held, k)
		}
	}
}

// terminates reports whether a statement list always transfers control
// away (a conservative syntactic check on its last statement).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

func (w *walker) stmt(s ast.Stmt, held Held) {
	if s == nil {
		return
	}
	w.visit(s, held)
	switch s := s.(type) {
	case *ast.ExprStmt:
		// Lock-state transitions happen only as statement-level calls.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, method, ok := LockKey(w.pass, call); ok {
				switch method {
				case "Lock":
					held[key] = Write
				case "RLock":
					held[key] = Read
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				// Still scan the receiver chain (e.g. guarded fields in
				// s.nodes[i].mu.Lock()).
				w.expr(s.X, held)
				return
			}
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		if key, method, ok := LockKey(w.pass, s.Call); ok && (method == "Unlock" || method == "RUnlock") {
			// defer mu.Unlock(): held for the rest of the function.
			_ = key
			w.expr(s.Call.Fun, held)
			return
		}
		w.deferredOrGo(s.Call, held)
	case *ast.GoStmt:
		w.deferredOrGo(s.Call, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		w.branch(s.Body.List, held)
		if s.Else != nil {
			w.branch([]ast.Stmt{s.Else}, held)
		}
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		w.branch(append(append([]ast.Stmt{}, s.Body.List...), post(s.Post)...), held)
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.branch(s.Body.List, held)
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e, held)
			}
			w.branch(cc.Body, held)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			w.branch(cc.Body, held)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.stmt(cc.Comm, held)
			}
			w.branch(cc.Body, held)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	}
}

func post(s ast.Stmt) []ast.Stmt {
	if s == nil {
		return nil
	}
	return []ast.Stmt{s}
}

// deferredOrGo walks a go/defer call: arguments evaluate now (under the
// current held set), but a function-literal body runs later with no lock
// guaranteed held.
func (w *walker) deferredOrGo(call *ast.CallExpr, held Held) {
	w.visit(call, held)
	for _, a := range call.Args {
		w.expr(a, held)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.stmts(lit.Body.List, Held{})
	} else {
		w.expr(call.Fun, held)
	}
}

// expr visits an expression tree, diving into function literals with the
// current held set (synchronous-closure heuristic; see package comment).
func (w *walker) expr(e ast.Expr, held Held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			w.visit(lit, held)
			w.stmts(lit.Body.List, held.clone())
			return false
		}
		w.visit(n, held)
		return true
	})
}
