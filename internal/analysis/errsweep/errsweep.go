// Package errsweep defines an Analyzer that flags discarded error
// returns from I/O and configuration calls — the class of bug that makes
// a CLI tool silently truncate its output file or run with half-parsed
// flags.
//
// A call whose results are entirely discarded (an expression statement)
// is reported when its last result is an error and the callee belongs to
// one of the must-check standard packages (os, io, bufio, flag,
// encoding/json, encoding/csv, encoding/gob, compress/gzip, compress/flate),
// or is fmt.Fprint/Fprintf/Fprintln writing somewhere other than
// os.Stdout / os.Stderr (diagnostics to the standard streams may be
// fire-and-forget; writes into files and buffers may not).
//
// Deferred calls are exempt (`defer f.Close()` cannot propagate its
// error); sites that discard deliberately use
//
//	//hfcvet:ignore errsweep <why the error does not matter>
package errsweep

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"hfc/internal/analysis/ignore"
)

// Analyzer is the errsweep pass.
var Analyzer = &analysis.Analyzer{
	Name: "errsweep",
	Doc:  "flag discarded error returns from I/O and configuration calls",
	Run:  run,
}

// mustCheck lists packages whose error returns must not be discarded.
var mustCheck = map[string]bool{
	"os":             true,
	"io":             true,
	"bufio":          true,
	"flag":           true,
	"encoding/json":  true,
	"encoding/csv":   true,
	"encoding/gob":   true,
	"compress/gzip":  true,
	"compress/flate": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := ignore.Parse(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := flaggable(pass, call); ok {
				dirs.Report(pass, call.Pos(), "error return of %s is discarded", name)
			}
			return true
		})
	}
	dirs.ReportUnused(pass)
	return nil, nil
}

// flaggable decides whether a fully-discarded call must have its error
// checked, returning a printable callee name.
func flaggable(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	callee := typeutilCallee(pass, call)
	if callee == nil {
		return "", false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return "", false
	}
	last := res.At(res.Len() - 1).Type()
	if !isErrorType(last) {
		return "", false
	}
	pkg := calleePackage(callee)
	if pkg == nil {
		return "", false
	}
	name := pkg.Name() + "." + callee.Name()
	if pkg.Path() == "fmt" {
		switch callee.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 && (isStdStream(pass, call.Args[0]) || isInfallibleWriter(pass, call.Args[0])) {
				return "", false
			}
			return name, true
		}
		return "", false
	}
	if mustCheck[pkg.Path()] {
		return name, true
	}
	return "", false
}

// typeutilCallee resolves the called function or method object.
func typeutilCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// calleePackage is the defining package of a function or method.
func calleePackage(fn *types.Func) *types.Package {
	return fn.Pkg()
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isInfallibleWriter reports whether e is an in-memory writer whose
// Write never returns a non-nil error (strings.Builder, bytes.Buffer).
func isInfallibleWriter(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// isStdStream reports whether e is exactly os.Stdout or os.Stderr.
func isStdStream(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "os" {
		return false
	}
	return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
}
