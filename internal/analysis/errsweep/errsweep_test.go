package errsweep_test

import (
	"testing"

	"hfc/internal/analysis/analysistest"
	"hfc/internal/analysis/errsweep"
)

func TestErrsweep(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errsweep.Analyzer, "a")
}
