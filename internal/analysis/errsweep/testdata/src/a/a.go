// Positive and negative cases for the errsweep analyzer.
package a

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
)

func writeReport(f *os.File, data []byte) {
	os.WriteFile("report.txt", data, 0o644) // want `error return of os\.WriteFile is discarded`
	f.Close()                               // want `error return of os\.Close is discarded`
	fmt.Fprintf(f, "done\n")                // want `error return of fmt\.Fprintf is discarded`
}

func parseArgs(fs *flag.FlagSet, args []string) {
	fs.Parse(args) // want `error return of flag\.Parse is discarded`
}

// checked is the clean version of all of the above.
func checked(f *os.File, data []byte) error {
	if err := os.WriteFile("report.txt", data, 0o644); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "done\n"); err != nil {
		return err
	}
	return f.Close()
}

// stderr diagnostics are fire-and-forget by design, and in-memory
// writers cannot fail.
func diagnostics() {
	fmt.Fprintln(os.Stderr, "warning: something odd")
	fmt.Fprintf(os.Stdout, "progress\n")
	fmt.Println("plain printing is fine too")
	var b strings.Builder
	fmt.Fprintf(&b, "formatting into a builder never errors\n")
	var buf bytes.Buffer
	fmt.Fprintln(&buf, "nor into a buffer")
}

// deferredClose cannot propagate its error; the defer idiom is exempt.
func deferredClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [16]byte
	_, rerr := f.Read(buf[:])
	return rerr
}

// suppressed documents a justified discard.
func bestEffortCleanup(path string) {
	//hfcvet:ignore errsweep best-effort temp file removal on the exit path
	os.Remove(path)
}
