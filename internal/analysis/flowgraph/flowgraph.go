// Package flowgraph is the hfcvet v2 flow layer: per-function control-flow
// graphs with reachability queries, built on the toolchain-vendored
// golang.org/x/tools/go/cfg.
//
// The v2 analyzers (maporder, lockorder, hotalloc, atomicmix) reason about
// *paths* — "can a map-ordered value reach a return without passing a
// sort", "is this lock acquired while that one is held on some execution" —
// which the v1 lexical passes could not express. The full
// golang.org/x/tools/go/ssa package is not part of the toolchain-vendored
// x/tools subset this repo builds against (the build must work with no
// module proxy), so this package provides the minimal SSA-style flow
// machinery those analyzers actually need: basic blocks, block-granular
// forward reachability, and loop-exit lookup, on plain AST nodes.
package flowgraph

import (
	"go/ast"

	"golang.org/x/tools/go/cfg"
)

// Graph is the control-flow graph of one function body plus the indexes the
// analyzers query. Build one per function with New; zero value is invalid.
type Graph struct {
	cfg *cfg.CFG
}

// New builds the flow graph of a function body. Every call is assumed to
// return (panic/os.Exit "noreturn" pruning would only remove paths, and the
// analyzers built on this layer are may-analyses — extra paths err toward
// reporting, never toward missing a flow).
func New(body *ast.BlockStmt) *Graph {
	return &Graph{cfg: cfg.New(body, func(*ast.CallExpr) bool { return true })}
}

// blockOf returns the basic block whose node list contains a node whose
// source extent covers n, preferring the tightest containing node. The cfg
// package records statements and the decomposed sub-expressions of control
// constructs; nested expressions are located by position containment.
func (g *Graph) blockOf(n ast.Node) *cfg.Block {
	var best *cfg.Block
	var bestSize int
	for _, b := range g.cfg.Blocks {
		for _, node := range b.Nodes {
			if node.Pos() <= n.Pos() && n.End() <= node.End() {
				size := int(node.End() - node.Pos())
				if best == nil || size < bestSize {
					best, bestSize = b, size
				}
			}
		}
	}
	return best
}

// exitOf returns the block control reaches after a loop or branch statement
// completes normally: the KindRangeDone / KindForDone / ... block recorded
// for that statement. Nil when the statement has no completion block (e.g.
// an unreachable loop).
func (g *Graph) exitOf(stmt ast.Stmt) *cfg.Block {
	for _, b := range g.cfg.Blocks {
		if b.Stmt != stmt {
			continue
		}
		switch b.Kind {
		case cfg.KindRangeDone, cfg.KindForDone, cfg.KindIfDone,
			cfg.KindSwitchDone, cfg.KindSelectDone:
			return b
		}
	}
	return nil
}

// ReachesAfter reports whether node target can execute on some path after
// loop (a for/range statement) completes. It is the "intervening sort"
// query: target is the sort call that would neutralize a map-ordered
// append, and the answer must be true only if the sort runs once the loop
// is done.
//
// When either endpoint cannot be located in the graph (dead code, build
// oddities) the result is false — the caller treats an unlocatable sort as
// absent and reports, erring toward a diagnostic that a human can suppress
// over a silent miss.
func (g *Graph) ReachesAfter(loop ast.Stmt, target ast.Node) bool {
	exit := g.exitOf(loop)
	if exit == nil {
		return false
	}
	tb := g.blockOf(target)
	if tb == nil {
		return false
	}
	seen := make(map[*cfg.Block]bool)
	stack := []*cfg.Block{exit}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		if b == tb {
			return true
		}
		stack = append(stack, b.Succs...)
	}
	return false
}
