package lockorder_test

import (
	"path/filepath"
	"testing"

	"hfc/internal/analysis/analysistest"
	"hfc/internal/analysis/lockorder"
)

func TestCycles(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "a", "b", "c", "d")
}

func TestManifest(t *testing.T) {
	set := func(name, value string) {
		t.Helper()
		if err := lockorder.Analyzer.Flags.Set(name, value); err != nil {
			t.Fatalf("set -%s: %v", name, err)
		}
	}
	set("manifest", filepath.Join(analysistest.TestData(), "manifest.txt"))
	set("packages", "m")
	t.Cleanup(func() {
		set("manifest", "")
		set("packages", "overlay,serve,routing,chaos")
	})
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "m")
}
