// Package lockorder defines an Analyzer that proves the repo's lock
// acquisition order is a partial order — globally, across packages.
//
// PR 4 and PR 6 grew lock graphs that span package boundaries: a serving
// engine that holds its state lock while publishing into the sharded route
// cache, a health detector whose quarantine transitions thread two overlay
// locks, a chaos engine invoked from under the overlay's send path. A
// deadlock needs only two such chains to disagree about order, and no
// intra-package check can see the disagreement. This analyzer can:
//
//   - Within each function it tracks the held-lock set (the lockwalk
//     engine) and records every acquisition-under-hold as a directed edge
//     between *lock classes* — a mutex identified by its declaration site,
//     e.g. `serve.Engine.stateMu` or `routing.cacheShard.mu`, so every
//     instance of a struct shares one node in the graph.
//   - Calls made while holding a lock are resolved to their static callee
//     and summarized; summaries and edges are exported as analysis facts,
//     so when package serve is analyzed, the lock behavior of the routing
//     functions it calls is already known, and edges crossing the package
//     boundary (stateMu → cacheShard.mu via RouteCache.Put) appear in the
//     global graph.
//   - Any cycle reachable from an edge observed in the package under
//     analysis is reported with its witnessing chain, one hop per line.
//
// The canonical order is a committed contract, not tribal knowledge:
// order.txt (embedded, or -manifest to override) ranks every lock class in
// the core concurrent packages (-packages, default overlay,serve,routing,
// chaos). An acquisition edge that runs *backward* through the manifest is
// reported even before it closes a cycle, and a mutex declared in a core
// package but missing from the manifest is reported too — adding a lock
// means declaring where it sits in the global order, in the same commit.
//
// Suppress an intentional site with
//
//	//hfcvet:ignore lockorder <why this cannot deadlock>
package lockorder

import (
	_ "embed"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"hfc/internal/analysis/ignore"
	"hfc/internal/analysis/lockwalk"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "build the cross-package lock-acquisition graph, reject cycles and manifest-order violations",
	Run:       run,
	FactTypes: []analysis.Fact{new(packageFact)},
}

//go:embed order.txt
var embeddedManifest string

var (
	manifestFlag string
	packagesFlag string
)

func init() {
	Analyzer.Flags.StringVar(&manifestFlag, "manifest", "",
		"path to a lock-order manifest overriding the embedded order.txt")
	Analyzer.Flags.StringVar(&packagesFlag, "packages", "overlay,serve,routing,chaos",
		"comma-separated package names whose every mutex must appear in the manifest")
}

// packageFact is the exported lock summary of one package: the acquisition
// edges observed in its functions (direct and through calls) and the lock
// behavior of each function, for callers in downstream packages.
type packageFact struct {
	Edges []factEdge
	Funcs []funcSummary
}

func (*packageFact) AFact()           {}
func (f *packageFact) String() string { return fmt.Sprintf("lockorder(%d edges)", len(f.Edges)) }

// factEdge is one lock-class ordering edge with a human-readable witness
// ("func acquires B while holding A at file:line [via call chain]").
type factEdge struct {
	From, To string
	Witness  string
}

// funcSummary records what one function does with locks, for transitive
// resolution from other packages.
type funcSummary struct {
	// Name is the types.Func full name, e.g.
	// "(*hfc/internal/routing.RouteCache).AdvanceRound".
	Name string
	// Acquires lists lock classes the function acquires directly.
	Acquires []string
	// Calls lists full names of statically resolvable callees.
	Calls []string
}

// localEdge is a factEdge that still knows its in-package report position.
type localEdge struct {
	factEdge
	pos token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := ignore.Parse(pass)
	manifest, err := loadManifest()
	if err != nil {
		return nil, err
	}

	sc := &scanner{pass: pass, funcs: map[string]*funcSummary{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				sc.scanFunc(fn)
			}
		}
	}

	// The global function table: this package plus everything reachable
	// through its imports (facts flow in dependency order, so the callees'
	// packages are always already summarized).
	table := map[string]*funcSummary{}
	var importedEdges []factEdge
	for _, dep := range transitiveImports(pass.Pkg) {
		var fact packageFact
		if !pass.ImportPackageFact(dep, &fact) {
			continue
		}
		importedEdges = append(importedEdges, fact.Edges...)
		for i := range fact.Funcs {
			table[fact.Funcs[i].Name] = &fact.Funcs[i]
		}
	}
	for name, fs := range sc.funcs {
		table[name] = fs
	}

	// Derive edges for calls made while holding: held → every lock class
	// the callee may transitively acquire.
	trans := &transCloser{table: table, memo: map[string][]string{}}
	local := sc.edges
	for _, ch := range sc.callsHolding {
		for _, acq := range trans.acquires(ch.callee) {
			for _, held := range ch.held {
				local = append(local, localEdge{
					pos: ch.pos,
					factEdge: factEdge{
						From: held,
						To:   acq,
						Witness: fmt.Sprintf("%s calls %s while holding %s (acquires %s) at %s",
							ch.caller, shortFuncName(ch.callee), held, acq, ch.position),
					},
				})
			}
		}
	}
	local = dedupeLocal(local)

	// The union graph this package can see.
	graph := map[string][]factEdge{}
	for _, e := range importedEdges {
		graph[e.From] = append(graph[e.From], e)
	}
	for _, e := range local {
		graph[e.From] = append(graph[e.From], e.factEdge)
	}

	reportCycles(pass, dirs, graph, local)
	reportManifestViolations(pass, dirs, manifest, local)
	reportUnlistedLocks(pass, dirs, manifest, sc.declared)

	// Export this package's contribution: its own edges and summaries.
	if len(local) > 0 || len(sc.funcs) > 0 {
		fact := &packageFact{}
		for _, e := range local {
			fact.Edges = append(fact.Edges, e.factEdge)
		}
		names := make([]string, 0, len(sc.funcs))
		for name := range sc.funcs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fact.Funcs = append(fact.Funcs, *sc.funcs[name])
		}
		pass.ExportPackageFact(fact)
	}

	dirs.ReportUnused(pass)
	return nil, nil
}

// reportCycles reports, once per (from, to) pair, every local edge that
// closes a cycle in the union graph, with the full witnessing chain.
func reportCycles(pass *analysis.Pass, dirs *ignore.Directives, graph map[string][]factEdge, local []localEdge) {
	seen := map[string]bool{}
	for _, e := range local {
		key := e.From + "\x00" + e.To
		if seen[key] {
			continue
		}
		seen[key] = true
		chain := findPath(graph, e.To, e.From)
		if chain == nil {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "lock-order cycle: %s → %s", e.From, e.To)
		for _, hop := range chain {
			fmt.Fprintf(&b, " → %s", hop.To)
		}
		fmt.Fprintf(&b, "\n\t%s", e.Witness)
		for _, hop := range chain {
			fmt.Fprintf(&b, "\n\t%s", hop.Witness)
		}
		dirs.Report(pass, e.pos, "%s", b.String())
	}
}

// findPath BFSes from one lock class to another, returning the edge chain
// or nil. A self-edge (from == to) is the trivial cycle and returns an
// empty, non-nil chain.
func findPath(graph map[string][]factEdge, from, to string) []factEdge {
	if from == to {
		return []factEdge{}
	}
	type item struct {
		class string
		chain []factEdge
	}
	visited := map[string]bool{from: true}
	queue := []item{{class: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range graph[cur.class] {
			if visited[e.To] {
				continue
			}
			chain := append(append([]factEdge{}, cur.chain...), e)
			if e.To == to {
				return chain
			}
			visited[e.To] = true
			queue = append(queue, item{class: e.To, chain: chain})
		}
	}
	return nil
}

// reportManifestViolations flags local edges that run backward through the
// manifest ranking: acquiring a lower-ranked lock while holding a
// higher-ranked one, even before any cycle closes.
func reportManifestViolations(pass *analysis.Pass, dirs *ignore.Directives, manifest map[string]int, local []localEdge) {
	seen := map[string]bool{}
	for _, e := range local {
		fi, fok := manifest[e.From]
		ti, tok := manifest[e.To]
		if !fok || !tok || fi <= ti {
			continue
		}
		key := e.From + "\x00" + e.To
		if seen[key] {
			continue
		}
		seen[key] = true
		dirs.Report(pass, e.pos,
			"lock order contract violation: %s (rank %d) acquired while holding %s (rank %d); order.txt ranks %s first\n\t%s",
			e.To, ti+1, e.From, fi+1, e.To, e.Witness)
	}
}

// reportUnlistedLocks enforces manifest completeness for the configured
// core packages: every mutex they declare must hold a rank.
func reportUnlistedLocks(pass *analysis.Pass, dirs *ignore.Directives, manifest map[string]int, declared []declaredLock) {
	if !inPackageSet(pass.Pkg.Name(), packagesFlag) {
		return
	}
	for _, d := range declared {
		if _, ok := manifest[d.class]; !ok {
			dirs.Report(pass, d.pos,
				"lock %s is not in the lock-order manifest (internal/analysis/lockorder/order.txt); add it at its acquisition rank",
				d.class)
		}
	}
}

func inPackageSet(name, flagValue string) bool {
	name = strings.TrimSuffix(name, "_test")
	for _, p := range strings.Split(flagValue, ",") {
		if strings.TrimSpace(p) == name {
			return true
		}
	}
	return false
}

// loadManifest parses the manifest into class → rank. Lines are lock
// classes in acquisition order; blank lines and #-comments are skipped.
func loadManifest() (map[string]int, error) {
	text := embeddedManifest
	if manifestFlag != "" {
		b, err := os.ReadFile(manifestFlag)
		if err != nil {
			return nil, fmt.Errorf("lockorder: -manifest: %w", err)
		}
		text = string(b)
	}
	manifest := map[string]int{}
	rank := 0
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, dup := manifest[line]; !dup {
			manifest[line] = rank
			rank++
		}
	}
	return manifest, nil
}

// callHolding is one call made with locks held, pending transitive
// resolution of the callee's acquisitions.
type callHolding struct {
	caller   string
	callee   string
	held     []string
	pos      token.Pos
	position string
}

// declaredLock is a mutex declaration site (struct field or package-level
// var) for the manifest completeness check.
type declaredLock struct {
	class string
	pos   token.Pos
}

// scanner accumulates one package's lock facts.
type scanner struct {
	pass         *analysis.Pass
	funcs        map[string]*funcSummary
	edges        []localEdge
	callsHolding []callHolding
	declared     []declaredLock
	declaredSeen map[string]bool
}

// scanFunc walks one function with the held-set tracker, recording direct
// acquisition edges, calls under hold, and the function's own summary.
func (sc *scanner) scanFunc(fn *ast.FuncDecl) {
	pass := sc.pass
	obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return
	}
	name := obj.FullName()
	fs := sc.funcs[name]
	if fs == nil {
		fs = &funcSummary{Name: name}
		sc.funcs[name] = fs
	}
	acquired := map[string]bool{}
	called := map[string]bool{}

	// Calls launched with `go` run without the spawner's locks; their
	// acquisitions impose no order against the held set here.
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goCalls[g.Call] = true
		}
		return true
	})

	// keyClass maps lockwalk's expression keys ("e.stateMu") to lock
	// classes ("serve.Engine.stateMu") as acquisitions are encountered.
	keyClass := map[string]string{}
	classesOf := func(held lockwalk.Held) []string {
		out := make([]string, 0, len(held))
		for key := range held {
			if c := keyClass[key]; c != "" {
				out = append(out, c)
			}
		}
		sort.Strings(out)
		return out
	}

	lockwalk.Walk(pass, fn.Body, func(n ast.Node, held lockwalk.Held) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if key, method, ok := lockwalk.LockKey(pass, call); ok {
			if method != "Lock" && method != "RLock" {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			class := sc.classOf(sel.X)
			if class == "" {
				return
			}
			keyClass[key] = class
			if !acquired[class] {
				acquired[class] = true
				fs.Acquires = append(fs.Acquires, class)
			}
			// The walker hands us the post-transition held set: the lock
			// being acquired is already in it under its own key. Skip that
			// key; a *different* key of the same class (two instances,
			// hand-over-hand) is a genuine self-edge and stays.
			var heldClasses []string
			for heldKey := range held {
				if heldKey == key {
					continue
				}
				if c := keyClass[heldKey]; c != "" {
					heldClasses = append(heldClasses, c)
				}
			}
			sort.Strings(heldClasses)
			for _, heldClass := range heldClasses {
				sc.edges = append(sc.edges, localEdge{
					pos: call.Pos(),
					factEdge: factEdge{
						From: heldClass,
						To:   class,
						Witness: fmt.Sprintf("%s acquires %s while holding %s at %s",
							shortFuncName(name), class, heldClass, sc.position(call.Pos())),
					},
				})
			}
			return
		}
		callee := staticCallee(pass, call)
		if callee == nil {
			return
		}
		calleeName := callee.FullName()
		if !called[calleeName] {
			called[calleeName] = true
			fs.Calls = append(fs.Calls, calleeName)
		}
		if len(held) == 0 || goCalls[call] {
			return
		}
		if heldClasses := classesOf(held); len(heldClasses) > 0 {
			sc.callsHolding = append(sc.callsHolding, callHolding{
				caller:   shortFuncName(name),
				callee:   calleeName,
				held:     heldClasses,
				pos:      call.Pos(),
				position: sc.position(call.Pos()),
			})
		}
	})

	// Mutex declarations for the completeness check, gathered per file once
	// (scanFunc is called per function; collect lazily on first call).
	if sc.declaredSeen == nil {
		sc.declaredSeen = map[string]bool{}
		sc.collectDeclared()
	}
}

// collectDeclared records every mutex declared in the package: named-struct
// fields and package-level vars.
func (sc *scanner) collectDeclared() {
	pass := sc.pass
	pkgName := pass.Pkg.Name()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.TypeSpec:
					st, ok := spec.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if !isMutexType(pass.TypesInfo.TypeOf(field.Type)) {
							continue
						}
						for _, fieldName := range field.Names {
							class := pkgName + "." + spec.Name.Name + "." + fieldName.Name
							if !sc.declaredSeen[class] {
								sc.declaredSeen[class] = true
								sc.declared = append(sc.declared, declaredLock{class: class, pos: fieldName.Pos()})
							}
						}
					}
				case *ast.ValueSpec:
					if gd.Tok != token.VAR {
						continue
					}
					for _, varName := range spec.Names {
						obj := pass.TypesInfo.Defs[varName]
						if obj == nil || !isMutexType(obj.Type()) {
							continue
						}
						class := pkgName + "." + varName.Name
						if !sc.declaredSeen[class] {
							sc.declaredSeen[class] = true
							sc.declared = append(sc.declared, declaredLock{class: class, pos: varName.Pos()})
						}
					}
				}
			}
		}
	}
}

// classOf names the lock class of a mutex expression: the declaration site
// shared by every instance. Struct fields become pkg.Type.field, package
// vars pkg.var; function-local mutexes return "" (they cannot participate
// in cross-instance ordering).
func (sc *scanner) classOf(expr ast.Expr) string {
	pass := sc.pass
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
			continue
		case *ast.StarExpr:
			expr = e.X
			continue
		}
		break
	}
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if p, ok := recv.Underlying().(*types.Pointer); ok {
				recv = p.Elem()
			}
			// Walk the embedded-field index path to the struct that
			// actually declares the mutex field.
			owner := namedOf(recv)
			if owner == nil {
				return ""
			}
			return owner.Obj().Pkg().Name() + "." + owner.Obj().Name() + "." + e.Sel.Name
		}
		// Qualified package-level var: pkg.Mu.
		if obj, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	}
	return ""
}

func (sc *scanner) position(pos token.Pos) string {
	p := sc.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// namedOf unwraps aliases and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if n, ok := t.(*types.Named); ok {
		return n
	}
	return nil
}

// isMutexType reports whether t is (a pointer to) sync.Mutex or RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// staticCallee resolves a call to its static *types.Func: a plain function,
// a qualified package function, or a concrete method. Interface method
// calls and function values return nil.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if p, ok := recv.Underlying().(*types.Pointer); ok {
				recv = p.Elem()
			}
			if _, isIface := recv.Underlying().(*types.Interface); isIface {
				return nil
			}
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// shortFuncName compresses a full function name for witnesses:
// "(*hfc/internal/serve.Engine).compute" → "(*serve.Engine).compute".
func shortFuncName(full string) string {
	out := full
	for {
		i := strings.Index(out, "hfc/internal/")
		if i < 0 {
			break
		}
		out = out[:i] + out[i+len("hfc/internal/"):]
	}
	return out
}

// transCloser memoizes the transitive lock acquisitions of functions over
// the global summary table.
type transCloser struct {
	table map[string]*funcSummary
	memo  map[string][]string
}

func (tc *transCloser) acquires(name string) []string {
	if got, ok := tc.memo[name]; ok {
		return got // nil while in progress breaks recursion cycles
	}
	tc.memo[name] = nil
	fs := tc.table[name]
	if fs == nil {
		return nil
	}
	set := map[string]bool{}
	for _, a := range fs.Acquires {
		set[a] = true
	}
	for _, callee := range fs.Calls {
		for _, a := range tc.acquires(callee) {
			set[a] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	tc.memo[name] = out
	return out
}

// transitiveImports lists every package reachable from pkg's imports.
func transitiveImports(pkg *types.Package) []*types.Package {
	var out []*types.Package
	seen := map[*types.Package]bool{}
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		out = append(out, p)
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	for _, imp := range pkg.Imports() {
		walk(imp)
	}
	return out
}

// dedupeLocal keeps the first edge per (from, to) pair.
func dedupeLocal(edges []localEdge) []localEdge {
	seen := map[string]bool{}
	out := edges[:0]
	for _, e := range edges {
		key := e.From + "\x00" + e.To
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, e)
	}
	return out
}
