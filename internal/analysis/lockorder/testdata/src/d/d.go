// Fixture d: the cycle closes through a *call* — xThenY never touches y
// directly, but the helper it calls under x does. Both the call site and
// the reversed direct acquisition report.
package d

import "sync"

type D struct {
	x sync.Mutex
	y sync.Mutex
}

func (d *D) lockY() {
	d.y.Lock()
	d.y.Unlock()
}

func (d *D) xThenY() {
	d.x.Lock()
	defer d.x.Unlock()
	d.lockY() // want `lock-order cycle: d\.D\.x → d\.D\.y → d\.D\.x`
}

func (d *D) yThenX() {
	d.y.Lock()
	defer d.y.Unlock()
	d.x.Lock() // want `lock-order cycle: d\.D\.y → d\.D\.x → d\.D\.y`
	d.x.Unlock()
}
