// Fixture b: a consistent outer → inner discipline, both directly and
// through a helper call. No cycle, no diagnostics.
package b

import "sync"

type T struct {
	outer sync.Mutex
	inner sync.Mutex
}

func (t *T) lockInner() {
	t.inner.Lock()
	t.inner.Unlock()
}

func (t *T) viaCall() {
	t.outer.Lock()
	defer t.outer.Unlock()
	t.lockInner()
}

func (t *T) direct() {
	t.outer.Lock()
	t.inner.Lock()
	t.inner.Unlock()
	t.outer.Unlock()
}
