// Fixture a: two functions acquire the same pair of locks in opposite
// orders — the canonical AB/BA deadlock. Both cycle-closing acquisitions
// are reported with the witnessing chain.
package a

import "sync"

type S struct {
	mu1 sync.Mutex
	mu2 sync.Mutex
}

func (s *S) ab() {
	s.mu1.Lock()
	defer s.mu1.Unlock()
	s.mu2.Lock() // want `lock-order cycle: a\.S\.mu1 → a\.S\.mu2 → a\.S\.mu1`
	s.mu2.Unlock()
}

func (s *S) ba() {
	s.mu2.Lock()
	defer s.mu2.Unlock()
	s.mu1.Lock() // want `lock-order cycle: a\.S\.mu2 → a\.S\.mu1 → a\.S\.mu2`
	s.mu1.Unlock()
}
