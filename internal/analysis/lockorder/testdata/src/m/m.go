// Fixture m: manifest enforcement, driven by testdata/manifest.txt via
// the -manifest flag (the test also sets -packages=m so the completeness
// check applies here). No cycle exists — the contract violation reports
// anyway, and the unranked mutex is flagged at its declaration.
package m

import "sync"

type M struct {
	first  sync.Mutex
	second sync.Mutex
	extra  sync.Mutex // want `lock m\.M\.extra is not in the lock-order manifest`
}

func (m *M) forward() {
	m.first.Lock()
	m.first.Unlock()
	m.second.Lock()
	m.second.Unlock()
}

func (m *M) backward() {
	m.second.Lock()
	defer m.second.Unlock()
	m.first.Lock() // want `lock order contract violation: m\.M\.first \(rank 1\) acquired while holding m\.M\.second \(rank 2\)`
	m.first.Unlock()
}
