// Fixture c: a cycle where one side carries an //hfcvet:ignore — only
// the unsuppressed side reports.
package c

import "sync"

type C struct {
	a sync.Mutex
	b sync.Mutex
}

func (c *C) one() {
	c.a.Lock()
	defer c.a.Unlock()
	c.b.Lock() // want `lock-order cycle: c\.C\.a → c\.C\.b → c\.C\.a`
	c.b.Unlock()
}

func (c *C) two() {
	c.b.Lock()
	defer c.b.Unlock()
	c.a.Lock() //hfcvet:ignore lockorder fixture: the one() side carries the diagnostic
	c.a.Unlock()
}
