package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/env"
	"hfc/internal/hfc"
	"hfc/internal/routing"
	"hfc/internal/state"
	"hfc/internal/stats"
	"hfc/internal/svc"
)

// AblationKRow is one inconsistency-factor setting (A1).
type AblationKRow struct {
	K              float64
	Clusters       float64
	CoordStates    float64
	ServiceStates  float64
	HierPathAvg    float64
	MaxClusterFrac float64
}

// RunAblationK sweeps the MST inconsistency factor k on one environment
// spec and reports how cluster granularity trades state size against path
// quality.
func RunAblationK(spec env.Spec, ks []float64, requests int) ([]AblationKRow, error) {
	if len(ks) == 0 {
		return nil, errors.New("experiments: empty k sweep")
	}
	if requests < 1 {
		return nil, errors.New("experiments: need at least 1 request")
	}
	rows := make([]AblationKRow, 0, len(ks))
	for _, k := range ks {
		s := spec
		s.InconsistencyK = k
		e, err := env.Build(s)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation-k k=%v: %w", k, err)
		}
		topo := e.Framework.Topology()
		states := e.Framework.States()
		var coordStates, svcStates []float64
		for node := 0; node < topo.N(); node++ {
			view, err := topo.View(node)
			if err != nil {
				return nil, err
			}
			coordStates = append(coordStates, float64(view.CoordinateStateSize()))
			svcStates = append(svcStates, float64(states[node].ServiceStateSize()))
		}
		var lengths []float64
		for i := 0; i < requests; i++ {
			req, err := e.NextRequest()
			if err != nil {
				return nil, err
			}
			p, err := e.Framework.Route(req)
			if err != nil {
				return nil, err
			}
			lengths = append(lengths, p.Length(e.TrueDist))
		}
		quality := cluster.Evaluate(topo.Clustering(), topo.Coords().Dist)
		rows = append(rows, AblationKRow{
			K:              k,
			Clusters:       float64(topo.NumClusters()),
			CoordStates:    stats.Mean(coordStates),
			ServiceStates:  stats.Mean(svcStates),
			HierPathAvg:    stats.Mean(lengths),
			MaxClusterFrac: quality.MaxClusterFraction,
		})
	}
	return rows, nil
}

// FormatAblationK renders the A1 table.
func FormatAblationK(rows []AblationKRow) string {
	out := "Ablation A1: MST inconsistency factor k\n"
	out += fmt.Sprintf("%-6s %10s %13s %13s %14s %14s\n",
		"k", "clusters", "coord-states", "svc-states", "hier path avg", "max frac")
	for _, r := range rows {
		out += fmt.Sprintf("%-6.1f %10.1f %13.1f %13.1f %14.1f %14.2f\n",
			r.K, r.Clusters, r.CoordStates, r.ServiceStates, r.HierPathAvg, r.MaxClusterFrac)
	}
	return out
}

// AblationDimRow is one embedding dimension (A2, the paper's §6.1 future
// work: distance-map precision vs coordinate dimension).
type AblationDimRow struct {
	Dim            int
	MedianRelError float64
	P90RelError    float64
	Clusters       float64
	HierPathAvg    float64
}

// RunAblationDim sweeps the coordinate-space dimension.
func RunAblationDim(spec env.Spec, dims []int, requests, errSamples int) ([]AblationDimRow, error) {
	if len(dims) == 0 {
		return nil, errors.New("experiments: empty dimension sweep")
	}
	rows := make([]AblationDimRow, 0, len(dims))
	for _, dim := range dims {
		s := spec
		s.CoordDim = dim
		e, err := env.Build(s)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation-dim dim=%d: %w", dim, err)
		}
		errs, err := e.EmbeddingError(errSamples)
		if err != nil {
			return nil, err
		}
		var lengths []float64
		for i := 0; i < requests; i++ {
			req, err := e.NextRequest()
			if err != nil {
				return nil, err
			}
			p, err := e.Framework.Route(req)
			if err != nil {
				return nil, err
			}
			lengths = append(lengths, p.Length(e.TrueDist))
		}
		rows = append(rows, AblationDimRow{
			Dim:            dim,
			MedianRelError: stats.Median(errs),
			P90RelError:    stats.Percentile(errs, 90),
			Clusters:       float64(e.Framework.NumClusters()),
			HierPathAvg:    stats.Mean(lengths),
		})
	}
	return rows, nil
}

// FormatAblationDim renders the A2 table.
func FormatAblationDim(rows []AblationDimRow) string {
	out := "Ablation A2: coordinate-space dimension (embedding precision)\n"
	out += fmt.Sprintf("%-6s %14s %14s %10s %14s\n", "dim", "median relerr", "p90 relerr", "clusters", "hier path avg")
	for _, r := range rows {
		out += fmt.Sprintf("%-6d %14.3f %14.3f %10.1f %14.1f\n",
			r.Dim, r.MedianRelError, r.P90RelError, r.Clusters, r.HierPathAvg)
	}
	return out
}

// AblationRelaxRow is one cluster-level relaxation mode (A3).
type AblationRelaxRow struct {
	Mode        routing.RelaxMode
	HierPathAvg float64
	CSPCostAvg  float64
}

// RunAblationRelax routes the same request stream under each relaxation
// mode of §5.1 step 2.
func RunAblationRelax(spec env.Spec, requests int) ([]AblationRelaxRow, error) {
	if requests < 1 {
		return nil, errors.New("experiments: need at least 1 request")
	}
	e, err := env.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation-relax: %w", err)
	}
	reqs := make([]svc.Request, requests)
	for i := range reqs {
		r, err := e.NextRequest()
		if err != nil {
			return nil, err
		}
		reqs[i] = r
	}
	modes := []routing.RelaxMode{routing.RelaxBacktrack, routing.RelaxExact, routing.RelaxExternalOnly}
	rows := make([]AblationRelaxRow, 0, len(modes))
	topo := e.Framework.Topology()
	states := e.Framework.States()
	for _, mode := range modes {
		var lengths, costs []float64
		for _, req := range reqs {
			router, err := routing.NewHierarchicalRouter(topo, states, req.Dest, mode)
			if err != nil {
				return nil, err
			}
			res, err := router.Route(req)
			if err != nil {
				return nil, err
			}
			lengths = append(lengths, res.Path.Length(e.TrueDist))
			costs = append(costs, res.CSPCost)
		}
		rows = append(rows, AblationRelaxRow{
			Mode:        mode,
			HierPathAvg: stats.Mean(lengths),
			CSPCostAvg:  stats.Mean(costs),
		})
	}
	return rows, nil
}

// FormatAblationRelax renders the A3 table.
func FormatAblationRelax(rows []AblationRelaxRow) string {
	out := "Ablation A3: cluster-level relaxation mode\n"
	out += fmt.Sprintf("%-15s %16s %14s\n", "mode", "hier path avg", "CSP cost avg")
	for _, r := range rows {
		out += fmt.Sprintf("%-15s %16.1f %14.1f\n", r.Mode, r.HierPathAvg, r.CSPCostAvg)
	}
	return out
}

// AblationBorderRow is one border-selection rule (A4/A5).
type AblationBorderRow struct {
	Selector string
	// HierPathAvg is the mean hierarchical path length (true delay).
	HierPathAvg float64
	// UniqueBorders is the number of distinct border proxies; the paper
	// argues the closest-pair rule spreads border duty across nodes.
	UniqueBorders float64
	// MaxPairsPerBorder is the largest number of cluster pairs any single
	// proxy serves as border for (1.0 per pair side); lower is better
	// balanced.
	MaxPairsPerBorder float64
}

// RunAblationBorder rebuilds the environment's HFC topology under each
// border-selection rule, re-converges state, and routes the same request
// stream: A4 (closest vs random pair) and A5 (single-logical-node heads).
func RunAblationBorder(spec env.Spec, requests int) ([]AblationBorderRow, error) {
	if requests < 1 {
		return nil, errors.New("experiments: need at least 1 request")
	}
	e, err := env.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation-border: %w", err)
	}
	reqs := make([]svc.Request, requests)
	for i := range reqs {
		r, err := e.NextRequest()
		if err != nil {
			return nil, err
		}
		reqs[i] = r
	}
	cmap := e.Framework.Topology().Coords()
	clustering := e.Framework.Topology().Clustering()
	caps := e.Framework.Capabilities()
	selectors := []struct {
		name string
		sel  hfc.BorderSelector
	}{
		{"closest-pair", hfc.ClosestPairSelector()},
		{"random-pair", hfc.RandomPairSelector(rand.New(rand.NewSource(spec.Seed + 1)))},
		{"cluster-head", hfc.HeadSelector()},
	}
	rows := make([]AblationBorderRow, 0, len(selectors))
	for _, s := range selectors {
		topo, err := hfc.BuildWithSelector(cmap, clustering, s.sel)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation-border %s: %w", s.name, err)
		}
		states, _, err := state.Distribute(topo, caps)
		if err != nil {
			return nil, err
		}
		var lengths []float64
		for _, req := range reqs {
			p, err := routing.RouteHierarchical(topo, states, req, routing.RelaxBacktrack)
			if err != nil {
				return nil, err
			}
			lengths = append(lengths, p.Length(e.TrueDist))
		}
		// Border load: cluster pairs served per border node.
		load := make(map[int]int)
		k := topo.NumClusters()
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				if a == b {
					continue
				}
				inA, _, err := topo.Border(a, b)
				if err != nil {
					return nil, err
				}
				load[inA]++
			}
		}
		maxLoad := 0
		for _, l := range load {
			if l > maxLoad {
				maxLoad = l
			}
		}
		rows = append(rows, AblationBorderRow{
			Selector:          s.name,
			HierPathAvg:       stats.Mean(lengths),
			UniqueBorders:     float64(len(topo.BorderNodes())),
			MaxPairsPerBorder: float64(maxLoad),
		})
	}
	return rows, nil
}

// FormatAblationBorder renders the A4/A5 table.
func FormatAblationBorder(rows []AblationBorderRow) string {
	out := "Ablations A4/A5: border-selection rule (incl. single-logical-node heads)\n"
	out += fmt.Sprintf("%-14s %16s %15s %20s\n", "selector", "hier path avg", "unique borders", "max pairs/border")
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %16.1f %15.1f %20.1f\n",
			r.Selector, r.HierPathAvg, r.UniqueBorders, r.MaxPairsPerBorder)
	}
	return out
}

// AblationChurnRow is one churn level (A6, the paper's §7 future work:
// joins deteriorate clustering quality; some re-structuring is needed).
type AblationChurnRow struct {
	// Joins is the number of proxies added after the initial clustering.
	Joins int
	// JoinNearestSeparation is the cluster-quality separation (inter/intra
	// distance ratio) after joining each node to its nearest neighbour's
	// cluster.
	JoinNearestSeparation float64
	// ReclusterSeparation is the separation after re-running the full MST
	// clustering on the grown node set.
	ReclusterSeparation float64
	// JoinNearestClusters and ReclusterClusters are the cluster counts.
	JoinNearestClusters, ReclusterClusters int
}

// RunAblationChurn grows a clustered coordinate set by randomly placed
// joiners (each lands near a random existing node, modelling a new proxy in
// some stub domain) and compares the paper's join-nearest heuristic with
// full re-clustering.
func RunAblationChurn(seed int64, baseNodes int, joinLevels []int) ([]AblationChurnRow, error) {
	if baseNodes < 10 {
		return nil, errors.New("experiments: need at least 10 base nodes")
	}
	if len(joinLevels) == 0 {
		return nil, errors.New("experiments: empty join sweep")
	}
	rng := rand.New(rand.NewSource(seed))
	// Base set: clusterable blobs.
	nBlobs := 5
	var pts []coords.Point
	for len(pts) < baseNodes {
		b := len(pts) % nBlobs
		cx := float64(b%3) * 300
		cy := float64(b/3) * 300
		pts = append(pts, coords.Point{cx + rng.Float64()*40, cy + rng.Float64()*40})
	}
	rows := make([]AblationChurnRow, 0, len(joinLevels))
	for _, joins := range joinLevels {
		grown := append([]coords.Point(nil), pts...)
		for j := 0; j < joins; j++ {
			anchor := grown[rng.Intn(len(grown))]
			grown = append(grown, coords.Point{
				anchor[0] + rng.NormFloat64()*25,
				anchor[1] + rng.NormFloat64()*25,
			})
		}
		gmap, err := coords.NewMap(grown)
		if err != nil {
			return nil, err
		}
		// Baseline clustering on the original nodes.
		base, err := cluster.Cluster(baseNodes, func(i, j int) float64 {
			return coords.Dist(pts[i], pts[j])
		}, cluster.DefaultConfig())
		if err != nil {
			return nil, err
		}
		// Join-nearest: each newcomer adopts the cluster of its nearest
		// pre-existing node (the paper's suggested heuristic).
		assignment := append([]int(nil), base.Assignment...)
		for idx := baseNodes; idx < len(grown); idx++ {
			best, bestD := 0, gmap.Dist(idx, 0)
			for other := 1; other < idx; other++ {
				if d := gmap.Dist(idx, other); d < bestD {
					best, bestD = other, d
				}
			}
			assignment = append(assignment, assignment[best])
		}
		joined := clusteringFromAssignment(assignment)
		// Full re-clustering on the grown set.
		reclustered, err := cluster.Cluster(len(grown), gmap.Dist, cluster.DefaultConfig())
		if err != nil {
			return nil, err
		}
		qJoin := cluster.Evaluate(joined, gmap.Dist)
		qRe := cluster.Evaluate(reclustered, gmap.Dist)
		rows = append(rows, AblationChurnRow{
			Joins:                 joins,
			JoinNearestSeparation: qJoin.Separation,
			ReclusterSeparation:   qRe.Separation,
			JoinNearestClusters:   qJoin.NumClusters,
			ReclusterClusters:     qRe.NumClusters,
		})
	}
	return rows, nil
}

// clusteringFromAssignment builds a cluster.Result from an assignment
// vector (renumbering cluster IDs densely).
func clusteringFromAssignment(assignment []int) *cluster.Result {
	remap := make(map[int]int)
	var clusters [][]int
	dense := make([]int, len(assignment))
	for node, c := range assignment {
		id, ok := remap[c]
		if !ok {
			id = len(clusters)
			remap[c] = id
			clusters = append(clusters, nil)
		}
		dense[node] = id
		clusters[id] = append(clusters[id], node)
	}
	return &cluster.Result{Assignment: dense, Clusters: clusters}
}

// FormatAblationChurn renders the A6 table.
func FormatAblationChurn(rows []AblationChurnRow) string {
	out := "Ablation A6: dynamic membership — join-nearest vs full re-clustering\n"
	out += fmt.Sprintf("%-8s %22s %20s %14s %12s\n",
		"joins", "join-nearest separ.", "recluster separ.", "join clusters", "re clusters")
	for _, r := range rows {
		out += fmt.Sprintf("%-8d %22.2f %20.2f %14d %12d\n",
			r.Joins, r.JoinNearestSeparation, r.ReclusterSeparation,
			r.JoinNearestClusters, r.ReclusterClusters)
	}
	return out
}

// MessageOverheadRow compares state-distribution traffic (an extra
// measurement the paper motivates but does not plot).
type MessageOverheadRow struct {
	Proxies       int
	FlatMessages  int
	HFCMessages   int
	HFCLocal      int
	HFCAggregate  int
	HFCForwarding int
}

// RunMessageOverhead measures one state-distribution round's traffic under
// HFC against the flat all-to-all flooding baseline (n(n-1) messages).
func RunMessageOverhead(specs []env.Spec) ([]MessageOverheadRow, error) {
	rows := make([]MessageOverheadRow, 0, len(specs))
	for _, spec := range specs {
		e, err := env.Build(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: message overhead: %w", err)
		}
		m := e.Framework.StateMessageStats()
		rows = append(rows, MessageOverheadRow{
			Proxies:       spec.Proxies,
			FlatMessages:  spec.Proxies * (spec.Proxies - 1),
			HFCMessages:   m.Total(),
			HFCLocal:      m.LocalMessages,
			HFCAggregate:  m.AggregateMessages,
			HFCForwarding: m.ForwardMessages,
		})
	}
	return rows, nil
}

// FormatMessageOverhead renders the traffic table.
func FormatMessageOverhead(rows []MessageOverheadRow) string {
	out := "State-distribution traffic per round (messages)\n"
	out += fmt.Sprintf("%-10s %14s %12s %10s %10s %10s\n",
		"proxies", "flat n(n-1)", "HFC total", "local", "aggregate", "forward")
	for _, r := range rows {
		out += fmt.Sprintf("%-10d %14d %12d %10d %10d %10d\n",
			r.Proxies, r.FlatMessages, r.HFCMessages, r.HFCLocal, r.HFCAggregate, r.HFCForwarding)
	}
	return out
}
