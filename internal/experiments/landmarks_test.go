package experiments

import (
	"strings"
	"testing"
)

func TestRunAblationLandmarks(t *testing.T) {
	rows, err := RunAblationLandmarks(42, 300, 60, 8, 300, 2)
	if err != nil {
		t.Fatalf("RunAblationLandmarks: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	byName := map[string]LandmarkRow{}
	for _, r := range rows {
		if r.MedianRelError <= 0 || r.MedianRelError > 1.5 {
			t.Errorf("%s: implausible median error %v", r.Strategy, r.MedianRelError)
		}
		byName[r.Strategy] = r
	}
	// The defining property of farthest-point selection: better spread.
	if byName["farthest-point"].MinPairSpread <= byName["random"].MinPairSpread {
		t.Errorf("farthest-point spread %v not above random %v",
			byName["farthest-point"].MinPairSpread, byName["random"].MinPairSpread)
	}
	if !strings.Contains(FormatAblationLandmarks(rows), "A8") {
		t.Error("FormatAblationLandmarks missing header")
	}
}

func TestRunAblationLandmarksValidation(t *testing.T) {
	if _, err := RunAblationLandmarks(1, 300, 60, 1, 100, 1); err == nil {
		t.Error("k < 2 accepted")
	}
	if _, err := RunAblationLandmarks(1, 300, 1, 8, 100, 1); err == nil {
		t.Error("single proxy accepted")
	}
	if _, err := RunAblationLandmarks(1, 300, 60, 8, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := RunAblationLandmarks(1, 300, 60, 8, 100, 0); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := RunAblationLandmarks(1, 300, 280, 40, 100, 1); err == nil {
		t.Error("pool exhaustion accepted")
	}
}
