package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"hfc/internal/overlay"
)

// SimScaleRow is one overlay size of the virtual-time protocol sweep: a
// full churn + crash + partition scenario run through overlay.Simulate,
// reporting the §4 convergence cost (rounds, delivered messages) and the
// §5 routing quality (relay bound, imprecision) against the cluster count
// the workload geometry produced. WallTime is the only non-deterministic
// column; everything else — including Digest — is byte-identical per
// (size, seed).
type SimScaleRow struct {
	N          int
	Multilevel bool
	Clusters   int
	Groups     int
	// Rounds is the number of state rounds the scenario drove to reach
	// final convergence (including re-convergence after faults).
	Rounds int
	// Messages totals delivered runtime messages; MsgPerNode normalises.
	Messages   int
	MsgPerNode float64
	// MaxRelayRun is the longest consecutive-relay run over all probes
	// (§5 bounds it by 2); MeanImprecision is the hierarchical/optimal
	// path-length ratio (0 where not measured — multilevel mode).
	MaxRelayRun     int
	MeanImprecision float64
	Converged       bool
	// VirtualTime is the simulated duration; WallTime the real cost.
	VirtualTime time.Duration
	WallTime    time.Duration
	// Digest is the order-independent state digest — the determinism
	// receipt a second run of the same seed must reproduce.
	Digest uint64
}

// RunSimScale sweeps the deterministic simulation harness over the given
// overlay sizes. Sizes at or above multilevelFrom run the tri-level mlhfc
// hierarchy (pass 0 for the default 50k cutover, where a flat §4 round's
// ~2n^1.5 messages stop being affordable); smaller sizes run flat bi-level
// mode with imprecision measurement. Every size runs the same scenario
// shape: capability churn, crash/recover cycles, one cluster partition,
// and route probes.
func RunSimScale(seed int64, sizes []int, multilevelFrom int) ([]SimScaleRow, error) {
	if len(sizes) == 0 {
		return nil, errors.New("experiments: no simscale sizes")
	}
	if multilevelFrom <= 0 {
		multilevelFrom = 50_000
	}
	rows := make([]SimScaleRow, 0, len(sizes))
	for _, n := range sizes {
		ml := n >= multilevelFrom
		spec := overlay.SimSpec{
			N:                  n,
			Multilevel:         ml,
			Churn:              4,
			Crashes:            2,
			Partition:          !ml,
			Probes:             16,
			MeasureImprecision: !ml,
		}
		//hfcvet:ignore detrand wall-clock cost column; no seeded state consumes it
		start := time.Now()
		rep, err := overlay.Simulate(spec, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: simscale n=%d: %w", n, err)
		}
		wall := time.Since(start)
		if rep.ProbeFailures > 0 {
			return nil, fmt.Errorf("experiments: simscale n=%d: %d of %d probes failed", n, rep.ProbeFailures, rep.Probes)
		}
		rows = append(rows, SimScaleRow{
			N:               n,
			Multilevel:      ml,
			Clusters:        rep.Clusters,
			Groups:          rep.Groups,
			Rounds:          rep.Rounds,
			Messages:        rep.Traffic.Total(),
			MsgPerNode:      float64(rep.Traffic.Total()) / float64(n),
			MaxRelayRun:     rep.MaxRelayRun,
			MeanImprecision: rep.MeanImprecision,
			Converged:       rep.Converged,
			VirtualTime:     rep.VirtualTime,
			WallTime:        wall,
			Digest:          rep.StateDigest,
		})
	}
	return rows, nil
}

// FormatSimScale renders the sweep as the README's virtual-time table.
func FormatSimScale(rows []SimScaleRow) string {
	var b strings.Builder
	b.WriteString("Virtual-time protocol validation (churn + crashes + partition per run)\n")
	b.WriteString("| proxies | mode | clusters | rounds | messages | msgs/node | relay<=2 | imprecision | converged | wall |\n")
	b.WriteString("|---------|------|----------|--------|----------|-----------|----------|-------------|-----------|------|\n")
	for _, r := range rows {
		mode := "flat"
		clusters := fmt.Sprintf("%d", r.Clusters)
		if r.Multilevel {
			mode = "tri-level"
			clusters = fmt.Sprintf("%d/%dg", r.Clusters, r.Groups)
		}
		imp := "-"
		if r.MeanImprecision > 0 {
			imp = fmt.Sprintf("%.3f", r.MeanImprecision)
		}
		fmt.Fprintf(&b, "| %d | %s | %s | %d | %d | %.1f | %s | %s | %v | %s |\n",
			r.N, mode, clusters, r.Rounds, r.Messages, r.MsgPerNode,
			yesNo(r.MaxRelayRun <= 2), imp, r.Converged, r.WallTime.Round(time.Millisecond))
	}
	return b.String()
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
