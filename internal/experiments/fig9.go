// Package experiments regenerates every table and figure of the paper's §6
// evaluation, plus the ablation studies DESIGN.md calls out. Each Run*
// function builds seeded environments (internal/env), measures, and returns
// typed rows; the Format* helpers render them as the text tables printed by
// cmd/experiments.
package experiments

import (
	"errors"
	"fmt"

	"hfc/internal/env"
	"hfc/internal/state"
	"hfc/internal/stats"
)

// Fig9Row is one overlay size of Figures 9(a) and 9(b): per-proxy state
// overhead in node-states, flat baseline vs HFC, averaged over proxies and
// over trials.
type Fig9Row struct {
	// Proxies is the overlay size.
	Proxies int
	// FlatCoordStates and FlatServiceStates are the single-level baseline:
	// every proxy keeps one entry per overlay node (= Proxies).
	FlatCoordStates, FlatServiceStates float64
	// HFCCoordStates is Fig. 9(a)'s hierarchical bar: own-cluster members
	// plus all border proxies (deduplicated).
	HFCCoordStates float64
	// HFCServiceStates is Fig. 9(b)'s hierarchical bar: own-cluster
	// members plus one aggregate per cluster.
	HFCServiceStates float64
	// Clusters and Borders describe the topologies behind the averages.
	Clusters, Borders float64
	// Trials is the number of independent physical topologies averaged.
	Trials int
}

// RunFig9 reproduces Figures 9(a) and 9(b): for each Table 1 environment,
// build `trials` independent topologies and average each proxy's
// coordinate-related and service-related state sizes.
func RunFig9(specs []env.Spec, trials int) ([]Fig9Row, error) {
	if trials < 1 {
		return nil, errors.New("experiments: need at least 1 trial")
	}
	rows := make([]Fig9Row, 0, len(specs))
	for _, spec := range specs {
		row := Fig9Row{Proxies: spec.Proxies, Trials: trials}
		var coordMeans, svcMeans, clusters, borders []float64
		for trial := 0; trial < trials; trial++ {
			s := spec
			s.Seed = spec.Seed + int64(trial)*7919
			e, err := env.Build(s)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig9 size %d trial %d: %w", spec.Proxies, trial, err)
			}
			topo := e.Framework.Topology()
			states := e.Framework.States()

			var coordStates, svcStates []float64
			for node := 0; node < topo.N(); node++ {
				view, err := topo.View(node)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig9 view: %w", err)
				}
				coordStates = append(coordStates, float64(view.CoordinateStateSize()))
				svcStates = append(svcStates, float64(states[node].ServiceStateSize()))
			}
			coordMeans = append(coordMeans, stats.Mean(coordStates))
			svcMeans = append(svcMeans, stats.Mean(svcStates))
			clusters = append(clusters, float64(topo.NumClusters()))
			borders = append(borders, float64(len(topo.BorderNodes())))
		}
		row.FlatCoordStates = float64(state.FlatStateSize(spec.Proxies))
		row.FlatServiceStates = float64(state.FlatStateSize(spec.Proxies))
		row.HFCCoordStates = stats.Mean(coordMeans)
		row.HFCServiceStates = stats.Mean(svcMeans)
		row.Clusters = stats.Mean(clusters)
		row.Borders = stats.Mean(borders)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig9a renders Figure 9(a) as a text table.
func FormatFig9a(rows []Fig9Row) string {
	out := "Figure 9(a): coordinates-related node-states per proxy\n"
	out += fmt.Sprintf("%-10s %12s %14s %10s %10s\n", "proxies", "flat", "hierarchical", "clusters", "borders")
	for _, r := range rows {
		out += fmt.Sprintf("%-10d %12.1f %14.1f %10.1f %10.1f\n",
			r.Proxies, r.FlatCoordStates, r.HFCCoordStates, r.Clusters, r.Borders)
	}
	return out
}

// FormatFig9b renders Figure 9(b) as a text table.
func FormatFig9b(rows []Fig9Row) string {
	out := "Figure 9(b): service-related node-states per proxy\n"
	out += fmt.Sprintf("%-10s %12s %14s %10s\n", "proxies", "flat", "hierarchical", "clusters")
	for _, r := range rows {
		out += fmt.Sprintf("%-10d %12.1f %14.1f %10.1f\n",
			r.Proxies, r.FlatServiceStates, r.HFCServiceStates, r.Clusters)
	}
	return out
}

// FormatTable1 renders the environment settings table (Table 1).
func FormatTable1(specs []env.Spec) string {
	out := "Table 1: simulation test environments\n"
	out += fmt.Sprintf("%-18s %10s %8s %8s %15s %18s\n",
		"physical topology", "landmarks", "proxies", "clients", "services/proxy", "service req. length")
	for _, s := range specs {
		out += fmt.Sprintf("%-18d %10d %8d %8d %12d-%-3d %13d-%-3d\n",
			s.PhysicalNodes, s.Landmarks, s.Proxies, s.Clients,
			s.MinServices, s.MaxServices, s.MinRequestLen, s.MaxRequestLen)
	}
	return out
}
