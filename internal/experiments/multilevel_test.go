package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRunMultiLevel(t *testing.T) {
	rows, err := RunMultiLevel(smallSpecs(), 25)
	if err != nil {
		t.Fatalf("RunMultiLevel: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Groups < 1 {
			t.Errorf("size %d: %d groups", r.Proxies, r.Groups)
		}
		// Tri-level never stores MORE state than bi-level.
		if r.TriCoordStates > r.BiCoordStates+1e-9 {
			t.Errorf("size %d: tri coord state %v above bi %v", r.Proxies, r.TriCoordStates, r.BiCoordStates)
		}
		// With more than one group, service state strictly drops; with a
		// single group the schemes coincide up to the extra super entry.
		if r.Groups > 1 && r.TriSvcStates >= r.BiSvcStates {
			t.Errorf("size %d: tri svc state %v not below bi %v", r.Proxies, r.TriSvcStates, r.BiSvcStates)
		}
		if r.Groups == 1 && math.Abs(r.TriPathAvg-r.BiPathAvg) > 1e-9 {
			t.Errorf("size %d: single group but paths differ: %v vs %v", r.Proxies, r.TriPathAvg, r.BiPathAvg)
		}
		if r.BiPathAvg <= 0 || r.TriPathAvg <= 0 {
			t.Errorf("size %d: non-positive path lengths", r.Proxies)
		}
	}
	if !strings.Contains(FormatMultiLevel(rows), "tri-level") {
		t.Error("FormatMultiLevel missing header")
	}
}

func TestRunMultiLevelValidation(t *testing.T) {
	if _, err := RunMultiLevel(smallSpecs(), 0); err == nil {
		t.Error("zero requests accepted")
	}
}
