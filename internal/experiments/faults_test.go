package experiments

import (
	"strings"
	"testing"

	"hfc/internal/env"
)

func TestRunFaults(t *testing.T) {
	spec := env.SmallSpec(601)
	rows, err := RunFaults(spec, []float64{0, 0.10}, 1, 30)
	if err != nil {
		t.Fatalf("RunFaults: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	clean, faulted := rows[0], rows[1]
	if clean.SuccessRate != 1 || clean.CrashedPerTrial != 0 {
		t.Errorf("fault-free row = %+v, want 100%% success, 0 crashed", clean)
	}
	if clean.Stretch < 0.999 || clean.Stretch > 1.001 {
		t.Errorf("fault-free stretch %v, want 1.0", clean.Stretch)
	}
	if faulted.CrashedPerTrial == 0 {
		t.Error("10% row crashed nobody")
	}
	// The issue's acceptance bar: >= 95% of requests survive 10% of
	// (non-border) nodes crashing.
	if faulted.SuccessRate < 0.95 {
		t.Errorf("success rate %.3f at 10%% crashes, want >= 0.95", faulted.SuccessRate)
	}
	if faulted.Stretch < 0.999 {
		t.Errorf("faulted stretch %v below 1: shorter than the no-fault baseline", faulted.Stretch)
	}
	if !strings.Contains(FormatFaults(rows), "crash frac") {
		t.Error("FormatFaults missing header")
	}
}

func TestRunBorderFailover(t *testing.T) {
	spec := env.SmallSpec(602)
	rows, err := RunBorderFailover(spec, 2, 20)
	if err != nil {
		t.Fatalf("RunBorderFailover: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// Bounded re-convergence through the backup pair, and requests
		// keep flowing while the primary border is down.
		if r.ReconvergeRounds >= convergeCap {
			t.Errorf("pair %d<->%d: no re-convergence within %d rounds", r.ClusterA, r.ClusterB, convergeCap)
		}
		if r.SuccessRate < 0.95 {
			t.Errorf("pair %d<->%d: success rate %.3f with crashed border, want >= 0.95", r.ClusterA, r.ClusterB, r.SuccessRate)
		}
		if r.RecoverRounds >= convergeCap {
			t.Errorf("pair %d<->%d: no strict convergence within %d rounds after recovery", r.ClusterA, r.ClusterB, convergeCap)
		}
	}
	if !strings.Contains(FormatBorderFailover(rows), "reconverge") {
		t.Error("FormatBorderFailover missing header")
	}
}

func TestRunFaultsValidation(t *testing.T) {
	spec := env.SmallSpec(1)
	if _, err := RunFaults(spec, nil, 1, 5); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := RunFaults(spec, []float64{0}, 0, 5); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := RunFaults(spec, []float64{1.5}, 1, 5); err == nil {
		t.Error("crash fraction 1.5 accepted")
	}
	if _, err := RunBorderFailover(spec, 0, 5); err == nil {
		t.Error("zero trials accepted")
	}
}
