package experiments

import (
	"strings"
	"testing"

	"hfc/internal/env"
)

// smallSpecs returns two reduced environments so the experiment plumbing
// runs in test time; the full Table 1 runs live in cmd/experiments and the
// benchmarks.
func smallSpecs() []env.Spec {
	a := env.SmallSpec(101)
	a.Proxies = 40
	b := env.SmallSpec(202)
	b.Proxies = 130
	b.PhysicalNodes = 600
	return []env.Spec{a, b}
}

func TestRunFig9ShapeAndScaling(t *testing.T) {
	rows, err := RunFig9(smallSpecs(), 2)
	if err != nil {
		t.Fatalf("RunFig9: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if int(r.FlatCoordStates) != r.Proxies {
			t.Errorf("flat coord states = %v, want %d", r.FlatCoordStates, r.Proxies)
		}
		if int(r.FlatServiceStates) != r.Proxies {
			t.Errorf("flat service states = %v, want %d", r.FlatServiceStates, r.Proxies)
		}
		// The headline claim: hierarchical state is strictly smaller than
		// flat at every size.
		if r.HFCCoordStates >= r.FlatCoordStates {
			t.Errorf("size %d: HFC coord states %v not below flat %v", r.Proxies, r.HFCCoordStates, r.FlatCoordStates)
		}
		if r.HFCServiceStates >= r.FlatServiceStates {
			t.Errorf("size %d: HFC service states %v not below flat %v", r.Proxies, r.HFCServiceStates, r.FlatServiceStates)
		}
		if r.Clusters < 2 {
			t.Errorf("size %d: %v clusters", r.Proxies, r.Clusters)
		}
	}
	// Flat grows linearly with constant one; hierarchical grows much
	// slower. Check the growth-rate ordering between the two sizes.
	flatGrowth := rows[1].FlatCoordStates - rows[0].FlatCoordStates
	hfcGrowth := rows[1].HFCCoordStates - rows[0].HFCCoordStates
	if hfcGrowth >= flatGrowth {
		t.Errorf("hierarchical coord growth %v not below flat growth %v", hfcGrowth, flatGrowth)
	}
	if out := FormatFig9a(rows); !strings.Contains(out, "Figure 9(a)") {
		t.Error("FormatFig9a missing header")
	}
	if out := FormatFig9b(rows); !strings.Contains(out, "Figure 9(b)") {
		t.Error("FormatFig9b missing header")
	}
}

func TestRunFig9Validation(t *testing.T) {
	if _, err := RunFig9(smallSpecs(), 0); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestRunFig10ShapeAndOrdering(t *testing.T) {
	rows, err := RunFig10(smallSpecs()[:1], 2, 30)
	if err != nil {
		t.Fatalf("RunFig10: %v", err)
	}
	r := rows[0]
	if r.MeshAvg <= 0 || r.HFCAggAvg <= 0 || r.HFCFullAvg <= 0 {
		t.Fatalf("non-positive path lengths: %+v", r)
	}
	// HFC without aggregation has strictly more information than
	// hierarchical HFC and the same topology constraint, so on average it
	// must not lose (up to sampling noise; same request stream).
	if r.HFCFullAvg > r.HFCAggAvg*1.05 {
		t.Errorf("HFC w/o aggregation (%v) worse than with aggregation (%v)", r.HFCFullAvg, r.HFCAggAvg)
	}
	// The paper's headline: HFC with aggregation is comparable to mesh
	// (actually slightly better). Allow generous slack for a small sample.
	if r.HFCAggAvg > r.MeshAvg*1.3 {
		t.Errorf("HFC w/ aggregation (%v) far worse than mesh (%v)", r.HFCAggAvg, r.MeshAvg)
	}
	// Mesh paths need relays; HFC paths cross at most two border relays
	// per inter-cluster hop.
	if r.MeshRelays <= 0 {
		t.Errorf("mesh relays = %v, expected some relaying", r.MeshRelays)
	}
	if out := FormatFig10(rows); !strings.Contains(out, "Figure 10") {
		t.Error("FormatFig10 missing header")
	}
}

func TestRunFig10Validation(t *testing.T) {
	if _, err := RunFig10(smallSpecs(), 0, 5); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := RunFig10(smallSpecs(), 1, 0); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestFormatTable1(t *testing.T) {
	out := FormatTable1(env.Table1(1))
	if !strings.Contains(out, "1200") || !strings.Contains(out, "1000") {
		t.Errorf("Table 1 output missing rows:\n%s", out)
	}
}

func TestRunAblationK(t *testing.T) {
	spec := env.SmallSpec(301)
	rows, err := RunAblationK(spec, []float64{2, 4}, 10)
	if err != nil {
		t.Fatalf("RunAblationK: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Higher k merges more: cluster count non-increasing.
	if rows[1].Clusters > rows[0].Clusters {
		t.Errorf("clusters grew with k: %v -> %v", rows[0].Clusters, rows[1].Clusters)
	}
	if !strings.Contains(FormatAblationK(rows), "A1") {
		t.Error("FormatAblationK missing header")
	}
	if _, err := RunAblationK(spec, nil, 10); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := RunAblationK(spec, []float64{2}, 0); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestRunAblationDim(t *testing.T) {
	spec := env.SmallSpec(303)
	rows, err := RunAblationDim(spec, []int{2, 3}, 8, 100)
	if err != nil {
		t.Fatalf("RunAblationDim: %v", err)
	}
	for _, r := range rows {
		if r.MedianRelError <= 0 || r.MedianRelError > 1.5 {
			t.Errorf("dim %d: implausible median error %v", r.Dim, r.MedianRelError)
		}
	}
	if !strings.Contains(FormatAblationDim(rows), "A2") {
		t.Error("FormatAblationDim missing header")
	}
	if _, err := RunAblationDim(spec, nil, 8, 100); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestRunAblationRelax(t *testing.T) {
	spec := env.SmallSpec(305)
	rows, err := RunAblationRelax(spec, 25)
	if err != nil {
		t.Fatalf("RunAblationRelax: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	var backtrack, exact float64
	for _, r := range rows {
		switch r.Mode.String() {
		case "backtrack":
			backtrack = r.CSPCostAvg
		case "exact":
			exact = r.CSPCostAvg
		}
	}
	if exact > backtrack+1e-9 {
		t.Errorf("exact CSP cost %v above backtrack %v", exact, backtrack)
	}
	if !strings.Contains(FormatAblationRelax(rows), "A3") {
		t.Error("FormatAblationRelax missing header")
	}
	if _, err := RunAblationRelax(spec, 0); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestRunAblationBorder(t *testing.T) {
	spec := env.SmallSpec(307)
	rows, err := RunAblationBorder(spec, 20)
	if err != nil {
		t.Fatalf("RunAblationBorder: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byName := map[string]AblationBorderRow{}
	for _, r := range rows {
		byName[r.Selector] = r
	}
	head := byName["cluster-head"]
	closest := byName["closest-pair"]
	// A cluster head serves every pair its cluster participates in, so its
	// max load must be at least the closest-pair rule's.
	if head.MaxPairsPerBorder < closest.MaxPairsPerBorder {
		t.Errorf("cluster-head max load %v below closest-pair %v", head.MaxPairsPerBorder, closest.MaxPairsPerBorder)
	}
	// Closest-pair should route no worse than random on average.
	random := byName["random-pair"]
	if closest.HierPathAvg > random.HierPathAvg*1.15 {
		t.Errorf("closest-pair paths (%v) much worse than random (%v)", closest.HierPathAvg, random.HierPathAvg)
	}
	if !strings.Contains(FormatAblationBorder(rows), "A4") {
		t.Error("FormatAblationBorder missing header")
	}
	if _, err := RunAblationBorder(spec, 0); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestRunAblationChurn(t *testing.T) {
	rows, err := RunAblationChurn(11, 60, []int{0, 20, 60})
	if err != nil {
		t.Fatalf("RunAblationChurn: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if !strings.Contains(FormatAblationChurn(rows), "A6") {
		t.Error("FormatAblationChurn missing header")
	}
	if _, err := RunAblationChurn(1, 5, []int{1}); err == nil {
		t.Error("tiny base accepted")
	}
	if _, err := RunAblationChurn(1, 60, nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestRunMessageOverhead(t *testing.T) {
	rows, err := RunMessageOverhead(smallSpecs()[:1])
	if err != nil {
		t.Fatalf("RunMessageOverhead: %v", err)
	}
	r := rows[0]
	if r.HFCMessages != r.HFCLocal+r.HFCAggregate+r.HFCForwarding {
		t.Errorf("message totals inconsistent: %+v", r)
	}
	if r.HFCMessages >= r.FlatMessages {
		t.Errorf("HFC traffic %d not below flat flooding %d", r.HFCMessages, r.FlatMessages)
	}
	if !strings.Contains(FormatMessageOverhead(rows), "traffic") {
		t.Error("FormatMessageOverhead missing header")
	}
}
