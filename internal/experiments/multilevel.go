package experiments

import (
	"errors"
	"fmt"
	"math"

	"hfc/internal/env"
	"hfc/internal/mlhfc"
	"hfc/internal/stats"
)

// MultiLevelRow compares the bi-level framework with the tri-level
// extension on one environment.
type MultiLevelRow struct {
	Proxies int
	// Groups and Clusters describe the tri-level structure (inner-cluster
	// count summed over groups).
	Groups, Clusters int
	// BiCoordStates/TriCoordStates: mean per-proxy coordinate node-states.
	BiCoordStates, TriCoordStates float64
	// BiSvcStates/TriSvcStates: mean per-proxy service node-states.
	BiSvcStates, TriSvcStates float64
	// BiPathAvg/TriPathAvg: mean true-delay path lengths over the same
	// request stream.
	BiPathAvg, TriPathAvg float64
	Requests              int
}

// RunMultiLevel builds each environment, constructs the tri-level topology
// over the same embedded coordinates and deployments, and measures the
// state-vs-path-quality trade of adding the third hierarchy level.
func RunMultiLevel(specs []env.Spec, requests int) ([]MultiLevelRow, error) {
	if requests < 1 {
		return nil, errors.New("experiments: need at least 1 request")
	}
	rows := make([]MultiLevelRow, 0, len(specs))
	for _, spec := range specs {
		e, err := env.Build(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: multilevel size %d: %w", spec.Proxies, err)
		}
		fw := e.Framework
		biTopo := fw.Topology()
		caps := fw.Capabilities()

		// Real embeddings rarely expose a crisp second distance scale, so
		// pick the hierarchy fan-out: √(#bi-level clusters) balances the
		// group count against group sizes.
		cfg := mlhfc.DefaultConfig()
		cfg.TargetGroups = int(math.Round(math.Sqrt(float64(biTopo.NumClusters()))))
		tri, err := mlhfc.Build(biTopo.Coords(), cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: multilevel tri build: %w", err)
		}
		triStates, err := mlhfc.Distribute(tri, caps)
		if err != nil {
			return nil, err
		}
		if err := mlhfc.Verify(tri, caps, triStates); err != nil {
			return nil, err
		}

		row := MultiLevelRow{Proxies: spec.Proxies, Groups: tri.NumGroups(), Requests: requests}
		var biCoord, triCoord, biSvc, triSvc []float64
		biStates := fw.States()
		for node := 0; node < biTopo.N(); node++ {
			view, err := biTopo.View(node)
			if err != nil {
				return nil, err
			}
			biCoord = append(biCoord, float64(view.CoordinateStateSize()))
			biSvc = append(biSvc, float64(biStates[node].ServiceStateSize()))
			tc, err := tri.CoordinateStateSize(node)
			if err != nil {
				return nil, err
			}
			triCoord = append(triCoord, float64(tc))
			triSvc = append(triSvc, float64(tri.ServiceStateSize(node)))
		}
		for g := 0; g < tri.NumGroups(); g++ {
			row.Clusters += tri.Interior(g).NumClusters()
		}
		row.BiCoordStates = stats.Mean(biCoord)
		row.TriCoordStates = stats.Mean(triCoord)
		row.BiSvcStates = stats.Mean(biSvc)
		row.TriSvcStates = stats.Mean(triSvc)

		var biLens, triLens []float64
		for i := 0; i < requests; i++ {
			req, err := e.NextRequest()
			if err != nil {
				return nil, err
			}
			biPath, err := fw.Route(req)
			if err != nil {
				return nil, fmt.Errorf("experiments: multilevel bi route: %w", err)
			}
			triRes, err := mlhfc.Route(tri, triStates, req)
			if err != nil {
				return nil, fmt.Errorf("experiments: multilevel tri route: %w", err)
			}
			if err := triRes.Path.Validate(req, caps); err != nil {
				return nil, fmt.Errorf("experiments: multilevel tri path invalid: %w", err)
			}
			biLens = append(biLens, biPath.Length(e.TrueDist))
			triLens = append(triLens, triRes.Path.Length(e.TrueDist))
		}
		row.BiPathAvg = stats.Mean(biLens)
		row.TriPathAvg = stats.Mean(triLens)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatMultiLevel renders the comparison table.
func FormatMultiLevel(rows []MultiLevelRow) string {
	out := "Multi-level extension: bi-level vs tri-level HFC (same coordinates & deployments)\n"
	out += fmt.Sprintf("%-8s %7s %9s %11s %11s %10s %10s %10s %10s\n",
		"proxies", "groups", "clusters", "bi-coord", "tri-coord", "bi-svc", "tri-svc", "bi-len", "tri-len")
	for _, r := range rows {
		out += fmt.Sprintf("%-8d %7d %9d %11.1f %11.1f %10.1f %10.1f %10.1f %10.1f\n",
			r.Proxies, r.Groups, r.Clusters, r.BiCoordStates, r.TriCoordStates,
			r.BiSvcStates, r.TriSvcStates, r.BiPathAvg, r.TriPathAvg)
	}
	return out
}
