package experiments

import (
	"errors"
	"fmt"

	"hfc/internal/env"
	"hfc/internal/overlay"
	"hfc/internal/stats"
)

// ConvergenceRow is one loss rate of the protocol-resilience experiment.
type ConvergenceRow struct {
	// DropRate is the injected per-message loss probability for
	// state-protocol traffic (overlay.Config.ProtocolDropRate).
	DropRate float64
	// MeanRounds and MaxRounds summarize protocol rounds until full
	// convergence across trials (a round is one TriggerStateRound +
	// Quiesce on the live goroutine-per-proxy runtime).
	MeanRounds, MaxRounds float64
	// Unconverged counts trials that failed to converge within the cap.
	Unconverged int
	// DroppedPerTrial is the mean number of messages lost on the way.
	DroppedPerTrial float64
	Trials          int
}

// RunConvergence measures how many periodic §4 rounds the live concurrent
// runtime needs to reach full convergence under injected message loss —
// the resilience property the paper's periodic protocol provides for free
// (every round resends everything).
func RunConvergence(spec env.Spec, dropRates []float64, trials, maxRounds int) ([]ConvergenceRow, error) {
	if len(dropRates) == 0 {
		return nil, errors.New("experiments: empty drop-rate sweep")
	}
	if trials < 1 || maxRounds < 1 {
		return nil, errors.New("experiments: trials and maxRounds must be >= 1")
	}
	e, err := env.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: convergence: %w", err)
	}
	topo := e.Framework.Topology()
	caps := e.Framework.Capabilities()

	rows := make([]ConvergenceRow, 0, len(dropRates))
	for _, rate := range dropRates {
		row := ConvergenceRow{DropRate: rate, Trials: trials}
		var rounds, dropped []float64
		for trial := 0; trial < trials; trial++ {
			sys, err := overlay.New(topo, caps, overlay.Config{
				ProtocolDropRate: rate,
				DropSeed:         spec.Seed + int64(trial)*101,
			})
			if err != nil {
				return nil, err
			}
			if err := sys.Start(); err != nil {
				return nil, err
			}
			used := maxRounds
			for r := 1; r <= maxRounds; r++ {
				sys.TriggerStateRound()
				sys.Quiesce()
				ok, err := sys.Converged()
				if err != nil {
					return nil, err
				}
				if ok {
					used = r
					break
				}
				if r == maxRounds {
					row.Unconverged++
				}
			}
			rounds = append(rounds, float64(used))
			dropped = append(dropped, float64(sys.DroppedMessages()))
			if err := sys.Stop(); err != nil {
				return nil, err
			}
		}
		row.MeanRounds = stats.Mean(rounds)
		row.MaxRounds = stats.Max(rounds)
		row.DroppedPerTrial = stats.Mean(dropped)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatConvergence renders the resilience table.
func FormatConvergence(rows []ConvergenceRow) string {
	out := "Protocol resilience: rounds to convergence under message loss (live runtime)\n"
	out += fmt.Sprintf("%-10s %12s %11s %13s %14s\n", "drop rate", "mean rounds", "max rounds", "unconverged", "dropped/trial")
	for _, r := range rows {
		out += fmt.Sprintf("%-10.2f %12.1f %11.0f %13d %14.0f\n",
			r.DropRate, r.MeanRounds, r.MaxRounds, r.Unconverged, r.DroppedPerTrial)
	}
	return out
}
