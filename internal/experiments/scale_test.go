package experiments

import (
	"os"
	"strings"
	"testing"
	"time"
)

// TestScaleSmall runs the sweep at sizes small enough for the test suite
// and checks the rows and the rendered table are coherent.
func TestScaleSmall(t *testing.T) {
	rows, err := RunScale(7, []int{400, 900})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Clusters < 1 {
			t.Fatalf("n=%d: %d clusters", r.N, r.Clusters)
		}
		if r.ClusterTime <= 0 || r.BorderTime <= 0 {
			t.Fatalf("n=%d: non-positive timings %v/%v", r.N, r.ClusterTime, r.BorderTime)
		}
	}
	out := FormatScale(rows)
	if !strings.Contains(out, "| 400 |") || !strings.Contains(out, "| 900 |") {
		t.Fatalf("table missing size rows:\n%s", out)
	}
}

func TestScaleRejectsBadInput(t *testing.T) {
	if _, err := RunScale(1, nil); err == nil {
		t.Fatal("expected error for empty size list")
	}
	if _, err := RunScale(1, []int{0}); err == nil {
		t.Fatal("expected error for size < 2")
	}
}

// TestScaleSmoke is the `make bench-scale` CI smoke: a single n=32k
// end-to-end construction through the geometric engine with no dense
// matrix, under a generous wall-clock budget. Gated behind HFC_BENCH_SCALE
// so the ordinary test run stays fast.
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("HFC_BENCH_SCALE") == "" {
		t.Skip("set HFC_BENCH_SCALE=1 to run the 32k construction smoke")
	}
	rows, err := RunScale(42, []int{32000})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	t.Logf("n=%d clusters=%d cluster=%v border=%v total=%v",
		r.N, r.Clusters, r.ClusterTime, r.BorderTime, r.Total())
	if budget := 5 * time.Minute; r.Total() > budget {
		t.Fatalf("32k construction took %v, budget %v — sub-quadratic path regressed", r.Total(), budget)
	}
}
