package experiments

import (
	"os"
	"testing"
	"time"

	"hfc/internal/overlay"
)

// TestSimScaleConvergence is the §4/§5 scale gate: under virtual time,
// churn bursts + crash/recover cycles + a cluster partition must still
// end in ground-truth convergence, every probe must route, and no probed
// path may exceed the paper's 2-consecutive-relay bound. The 32k drill is
// skipped in -short (the CI sim job runs it explicitly); short mode
// covers n <= 8k.
func TestSimScaleConvergence(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		heavy bool // skipped in -short
	}{
		{"n1k", 1000, false},
		{"n8k", 8000, false},
		{"n32k", 32000, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("32k drill skipped in -short; the CI sim job runs it")
			}
			rep, err := overlay.Simulate(overlay.SimSpec{
				N: tc.n, Churn: 4, Crashes: 2, Partition: true, Probes: 16,
			}, 42)
			if err != nil {
				t.Fatalf("Simulate: %v", err)
			}
			if !rep.Converged {
				t.Error("did not reconverge after churn, crashes, and partition heal")
			}
			if rep.Probes == 0 || rep.ProbeFailures != 0 {
				t.Errorf("probes %d with %d failures, want >0 with 0", rep.Probes, rep.ProbeFailures)
			}
			if rep.MaxRelayRun > 2 {
				t.Errorf("max consecutive relay run %d exceeds the paper's bound of 2", rep.MaxRelayRun)
			}
			if rep.Traffic.Total() == 0 || rep.Rounds == 0 {
				t.Errorf("empty run: %d messages over %d rounds", rep.Traffic.Total(), rep.Rounds)
			}
		})
	}
}

// TestSimConverge100k is the acceptance drill for the virtual-time
// runtime: a seeded 100k-node tri-level overlay with churn and crashes
// converges in under 60s of wall clock on one core, and a second run of
// the same seed reproduces the event trace and state digest byte for
// byte. ~1 minute for both runs, so it only fires when explicitly
// requested via HFC_SIM_SCALE=1.
func TestSimConverge100k(t *testing.T) {
	if os.Getenv("HFC_SIM_SCALE") == "" {
		t.Skip("set HFC_SIM_SCALE=1 to run the 100k virtual-time drill (~1 min)")
	}
	spec := overlay.SimSpec{N: 100_000, Multilevel: true, Churn: 4, Crashes: 2, Probes: 16}
	//hfcvet:ignore detrand wall-clock acceptance measurement; no seeded state consumes it
	start := time.Now()
	a, err := overlay.Simulate(spec, 1)
	wall := time.Since(start)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !a.Converged {
		t.Fatal("100k tri-level run did not converge")
	}
	if a.ProbeFailures != 0 {
		t.Fatalf("%d of %d probes failed", a.ProbeFailures, a.Probes)
	}
	if wall >= 60*time.Second {
		t.Errorf("100k run took %v, want < 60s", wall)
	}
	b, err := overlay.Simulate(spec, 1)
	if err != nil {
		t.Fatalf("Simulate (second run): %v", err)
	}
	if a.Trace != b.Trace {
		t.Error("same-seed 100k traces differ")
	}
	if a.StateDigest != b.StateDigest || a.VirtualTime != b.VirtualTime {
		t.Errorf("same-seed 100k runs diverged: digest %x/%x, vtime %v/%v",
			a.StateDigest, b.StateDigest, a.VirtualTime, b.VirtualTime)
	}
	t.Logf("100k: %d clusters in %d groups, %d rounds, %d messages, vtime %v, wall %v",
		a.Clusters, a.Groups, a.Rounds, a.Traffic.Total(), a.VirtualTime, wall)
}
