package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"hfc/internal/env"
	"hfc/internal/hfc"
	"hfc/internal/overlay"
	"hfc/internal/routing"
	"hfc/internal/stats"
	"hfc/internal/svc"
)

// FaultsRow is one crash fraction of the fault-tolerance experiment.
type FaultsRow struct {
	// CrashFraction is the fraction of overlay nodes fail-stopped before
	// the request phase (crashes land on non-border nodes; border failover
	// is measured separately by RunBorderFailover).
	CrashFraction float64
	// CrashedPerTrial is the mean number of nodes actually crashed.
	CrashedPerTrial float64
	// ReconvergeRounds is the mean number of protocol rounds after the
	// crashes until the live nodes' tables verify (ConvergedLive).
	ReconvergeRounds float64
	// SuccessRate is the fraction of requests that returned a valid path
	// with every hop live.
	SuccessRate float64
	// RetriesPerRequest and FailoversPerRequest are mean RPC re-attempts
	// and alternate-resolver failovers per request.
	RetriesPerRequest, FailoversPerRequest float64
	// Stretch is the mean faulted path length over the mean no-fault
	// baseline length (synchronous model on the same requests), in the
	// embedded-coordinate metric. 1.0 means crashes cost nothing.
	Stretch float64
	// Requests and Trials record the sample sizes.
	Requests, Trials int
}

// RunFaults measures end-to-end request survival on the live runtime as an
// increasing fraction of nodes fail-stop: re-convergence of the §4 state
// protocol modulo the crashed set, request success rate (valid path, all
// hops live), RPC retry/failover effort, and path stretch against the
// fault-free synchronous baseline on the identical request sequence.
func RunFaults(spec env.Spec, crashFractions []float64, trials, requests int) ([]FaultsRow, error) {
	if len(crashFractions) == 0 {
		return nil, errors.New("experiments: empty crash-fraction sweep")
	}
	if trials < 1 || requests < 1 {
		return nil, errors.New("experiments: trials and requests must be >= 1")
	}
	e, err := env.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: faults: %w", err)
	}
	topo := e.Framework.Topology()
	caps := e.Framework.Capabilities()
	baseline := e.Framework.States()

	// Crashes are drawn from nodes with no border duty, primary or backup:
	// the paper's clustering keeps border pairs long-lived, and border
	// failover has its own experiment.
	protected := map[int]bool{}
	for _, b := range topo.BorderNodes() {
		protected[b] = true
	}
	for _, b := range topo.BackupBorderNodes() {
		protected[b] = true
	}
	var crashable []int
	for i := 0; i < topo.N(); i++ {
		if !protected[i] {
			crashable = append(crashable, i)
		}
	}

	rows := make([]FaultsRow, 0, len(crashFractions))
	for fi, frac := range crashFractions {
		if frac < 0 || frac >= 1 {
			return nil, fmt.Errorf("experiments: crash fraction %v outside [0,1)", frac)
		}
		row := FaultsRow{CrashFraction: frac, Requests: requests, Trials: trials}
		var crashed, rounds, success, retries, failovers, lenFault, lenBase []float64
		for trial := 0; trial < trials; trial++ {
			sys, err := overlay.New(topo, caps, overlay.Config{
				DropSeed:   spec.Seed + int64(trial)*7919,
				RPCRetries: 1,
			})
			if err != nil {
				return nil, err
			}
			if err := sys.Start(); err != nil {
				return nil, err
			}
			if err := converge(sys, sys.Converged, convergeCap); err != nil {
				return nil, fmt.Errorf("experiments: faults: fault-free phase: %w", err)
			}

			nCrash := int(frac*float64(topo.N()) + 0.5)
			if nCrash > len(crashable) {
				nCrash = len(crashable)
			}
			perm := permFor(spec.Seed+int64(fi)*104729+int64(trial)*7919, len(crashable))
			for i := 0; i < nCrash; i++ {
				if err := sys.Crash(crashable[perm[i]]); err != nil {
					return nil, err
				}
			}
			crashed = append(crashed, float64(nCrash))

			used := float64(convergeCap)
			for r := 1; r <= convergeCap; r++ {
				sys.TriggerStateRound()
				sys.Quiesce()
				ok, err := sys.ConvergedLive()
				if err != nil {
					return nil, err
				}
				if ok {
					used = float64(r)
					break
				}
			}
			rounds = append(rounds, used)

			before := sys.FaultCounters()
			okReqs := 0
			for q := 0; q < requests; q++ {
				req, err := liveRequest(e, sys)
				if err != nil {
					return nil, err
				}
				base, err := routing.RouteHierarchical(topo, baseline, req, routing.RelaxBacktrack)
				if err != nil {
					// The generator only emits satisfiable requests; a
					// baseline failure is a harness bug.
					return nil, fmt.Errorf("experiments: faults: baseline route: %w", err)
				}
				res, err := sys.Route(req)
				if err != nil || !allHopsLive(sys, res.Path) || res.Path.Validate(req, caps) != nil {
					continue
				}
				okReqs++
				lenFault = append(lenFault, pathLength(topo, res.Path))
				lenBase = append(lenBase, pathLength(topo, base))
			}
			after := sys.FaultCounters()
			success = append(success, float64(okReqs)/float64(requests))
			retries = append(retries, float64(after.RPCRetries-before.RPCRetries)/float64(requests))
			failovers = append(failovers, float64(after.ResolverFailovers-before.ResolverFailovers)/float64(requests))
			if err := sys.Stop(); err != nil {
				return nil, err
			}
		}
		row.CrashedPerTrial = stats.Mean(crashed)
		row.ReconvergeRounds = stats.Mean(rounds)
		row.SuccessRate = stats.Mean(success)
		row.RetriesPerRequest = stats.Mean(retries)
		row.FailoversPerRequest = stats.Mean(failovers)
		if b := stats.Mean(lenBase); b > 0 {
			row.Stretch = stats.Mean(lenFault) / b
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BorderFailoverRow is one trial of the border-proxy failover experiment.
type BorderFailoverRow struct {
	// ClusterA, ClusterB is the cluster pair whose primary border was
	// attacked; CrashedBorder is the primary endpoint crashed.
	ClusterA, ClusterB, CrashedBorder int
	// ReconvergeRounds is how many protocol rounds the system needed to
	// verify again (modulo the crash) with border duty on the backup pair.
	ReconvergeRounds int
	// SuccessRate is the request success rate after failover.
	SuccessRate float64
	// RecoverRounds is how many rounds full strict convergence took after
	// the border recovered.
	RecoverRounds int
	Requests      int
}

// RunBorderFailover crashes a primary border proxy, measures how many §4
// rounds the runtime needs to re-converge through the ranked backup border
// pair, checks that requests keep succeeding, then recovers the node and
// measures the return to strict convergence.
func RunBorderFailover(spec env.Spec, trials, requests int) ([]BorderFailoverRow, error) {
	if trials < 1 || requests < 1 {
		return nil, errors.New("experiments: trials and requests must be >= 1")
	}
	e, err := env.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: border failover: %w", err)
	}
	topo := e.Framework.Topology()
	caps := e.Framework.Capabilities()

	// Cluster pairs that actually have a backup border to fail over to.
	type pair struct{ a, b int }
	var pairs []pair
	for a := 0; a < topo.NumClusters(); a++ {
		for b := a + 1; b < topo.NumClusters(); b++ {
			backups, err := topo.BackupBorders(a, b)
			if err != nil {
				return nil, err
			}
			if len(backups) > 0 {
				pairs = append(pairs, pair{a, b})
			}
		}
	}
	if len(pairs) == 0 {
		return nil, errors.New("experiments: border failover: no cluster pair has backup borders (clusters too small)")
	}

	rows := make([]BorderFailoverRow, 0, trials)
	for trial := 0; trial < trials; trial++ {
		p := pairs[trial%len(pairs)]
		inA, _, err := topo.Border(p.a, p.b)
		if err != nil {
			return nil, err
		}
		sys, err := overlay.New(topo, caps, overlay.Config{
			DropSeed:   spec.Seed + int64(trial)*7919,
			RPCRetries: 1,
		})
		if err != nil {
			return nil, err
		}
		if err := sys.Start(); err != nil {
			return nil, err
		}
		if err := converge(sys, sys.Converged, convergeCap); err != nil {
			return nil, fmt.Errorf("experiments: border failover: fault-free phase: %w", err)
		}

		if err := sys.Crash(inA); err != nil {
			return nil, err
		}
		row := BorderFailoverRow{ClusterA: p.a, ClusterB: p.b, CrashedBorder: inA, Requests: requests}
		row.ReconvergeRounds = convergeCap
		for r := 1; r <= convergeCap; r++ {
			sys.TriggerStateRound()
			sys.Quiesce()
			ok, err := sys.ConvergedLive()
			if err != nil {
				return nil, err
			}
			if ok {
				row.ReconvergeRounds = r
				break
			}
		}
		okReqs := 0
		for q := 0; q < requests; q++ {
			req, err := liveRequest(e, sys)
			if err != nil {
				return nil, err
			}
			res, err := sys.Route(req)
			if err == nil && allHopsLive(sys, res.Path) && res.Path.Validate(req, caps) == nil {
				okReqs++
			}
		}
		row.SuccessRate = float64(okReqs) / float64(requests)

		if err := sys.Recover(inA); err != nil {
			return nil, err
		}
		row.RecoverRounds = convergeCap
		for r := 1; r <= convergeCap; r++ {
			sys.TriggerStateRound()
			sys.Quiesce()
			ok, err := sys.Converged()
			if err != nil {
				return nil, err
			}
			if ok {
				row.RecoverRounds = r
				break
			}
		}
		if err := sys.Stop(); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFaults renders the crash-fraction table.
func FormatFaults(rows []FaultsRow) string {
	out := "Fault tolerance: request survival under node crashes (live runtime)\n"
	out += fmt.Sprintf("%-12s %8s %11s %9s %12s %13s %9s\n",
		"crash frac", "crashed", "reconverge", "success", "retries/req", "failover/req", "stretch")
	for _, r := range rows {
		out += fmt.Sprintf("%-12.2f %8.1f %11.1f %8.1f%% %12.3f %13.3f %9.3f\n",
			r.CrashFraction, r.CrashedPerTrial, r.ReconvergeRounds,
			100*r.SuccessRate, r.RetriesPerRequest, r.FailoversPerRequest, r.Stretch)
	}
	return out
}

// FormatBorderFailover renders the border-failover table.
func FormatBorderFailover(rows []BorderFailoverRow) string {
	out := "Border-proxy failover: crash a primary border, converge via backups\n"
	out += fmt.Sprintf("%-10s %8s %11s %9s %14s\n",
		"pair", "border", "reconverge", "success", "recover rounds")
	for _, r := range rows {
		out += fmt.Sprintf("%2d <-> %-3d %8d %11d %8.1f%% %14d\n",
			r.ClusterA, r.ClusterB, r.CrashedBorder, r.ReconvergeRounds, 100*r.SuccessRate, r.RecoverRounds)
	}
	return out
}

// convergeCap bounds every converge loop; the lossless runtime settles in
// one round, so hitting the cap means something is broken.
const convergeCap = 15

// converge drives protocol rounds until check passes, erroring at the cap.
func converge(sys *overlay.System, check func() (bool, error), limit int) error {
	for r := 1; r <= limit; r++ {
		sys.TriggerStateRound()
		sys.Quiesce()
		ok, err := check()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
	}
	return fmt.Errorf("no convergence within %d rounds", limit)
}

// liveRequest draws a request whose endpoints are both live.
func liveRequest(e *env.Environment, sys *overlay.System) (svc.Request, error) {
	for tries := 0; tries < 100; tries++ {
		req, err := e.NextRequest()
		if err != nil {
			return svc.Request{}, err
		}
		if !sys.IsCrashed(req.Source) && !sys.IsCrashed(req.Dest) {
			return req, nil
		}
	}
	return svc.Request{}, errors.New("experiments: could not draw a live-endpoint request in 100 tries")
}

// allHopsLive reports whether no hop of the path is currently crashed.
func allHopsLive(sys *overlay.System, p *routing.Path) bool {
	if p == nil {
		return false
	}
	for _, h := range p.Hops {
		if sys.IsCrashed(h.Node) {
			return false
		}
	}
	return true
}

// pathLength sums the embedded-coordinate hop distances of a path.
func pathLength(topo *hfc.Topology, p *routing.Path) float64 {
	var d float64
	for i := 1; i < len(p.Hops); i++ {
		d += topo.Dist(p.Hops[i-1].Node, p.Hops[i].Node)
	}
	return d
}

// permFor is a deterministic permutation of [0,n) derived from a seed —
// the crash-set draw, reproducible per (fraction, trial).
func permFor(seed int64, n int) []int {
	return rand.New(rand.NewSource(seed)).Perm(n)
}
