package experiments

import (
	"errors"
	"fmt"

	"hfc/internal/env"
	"hfc/internal/routing"
	"hfc/internal/stats"
)

// Fig10Row is one overlay size of Figure 10: average service path length
// (true network delay) of the three schemes over the same request stream.
type Fig10Row struct {
	// Proxies is the overlay size.
	Proxies int
	// MeshAvg is the single-level mesh baseline (global state, optimal
	// flat routing over mesh relays).
	MeshAvg float64
	// HFCAggAvg is the paper's framework: HFC topology with state
	// aggregation, hierarchical divide-and-conquer routing.
	HFCAggAvg float64
	// HFCFullAvg is HFC without aggregation: same topology, full global
	// state, optimal flat routing.
	HFCFullAvg float64
	// MeshRelays and HFCRelays are mean relay (no-service) hops per path.
	MeshRelays, HFCAggRelays float64
	// Requests and Trials record the sample size.
	Requests, Trials int
}

// RunFig10 reproduces Figure 10: for each environment, run `requests`
// random client requests through the mesh baseline, hierarchical HFC, and
// HFC without aggregation, and average the resulting concrete path lengths
// measured in true network delay. Every scheme routes the same request
// stream in the same environment.
func RunFig10(specs []env.Spec, trials, requests int) ([]Fig10Row, error) {
	if trials < 1 || requests < 1 {
		return nil, errors.New("experiments: trials and requests must be >= 1")
	}
	rows := make([]Fig10Row, 0, len(specs))
	for _, spec := range specs {
		row := Fig10Row{Proxies: spec.Proxies, Requests: requests, Trials: trials}
		var meshAll, aggAll, fullAll, meshRelays, aggRelays []float64
		for trial := 0; trial < trials; trial++ {
			s := spec
			s.Seed = spec.Seed + int64(trial)*7919
			e, err := env.Build(s)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig10 size %d trial %d: %w", spec.Proxies, trial, err)
			}
			fw := e.Framework
			provs := routing.CapabilityProviders(fw.Capabilities())
			hfcMetric := routing.HFCMetric{T: fw.Topology()}
			meshOracle := routing.OracleFunc(e.Mesh.Dist)
			meshExp := routing.ExpanderFunc(e.Mesh.Path)

			for i := 0; i < requests; i++ {
				req, err := e.NextRequest()
				if err != nil {
					return nil, fmt.Errorf("experiments: fig10 request: %w", err)
				}
				meshPath, err := routing.FindPath(req, provs, meshOracle, meshExp)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig10 mesh route: %w", err)
				}
				aggPath, err := fw.Route(req)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig10 hierarchical route: %w", err)
				}
				fullPath, err := routing.FindPath(req, provs, hfcMetric, hfcMetric)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig10 hfc-full route: %w", err)
				}
				meshAll = append(meshAll, meshPath.Length(e.TrueDist))
				aggAll = append(aggAll, aggPath.Length(e.TrueDist))
				fullAll = append(fullAll, fullPath.Length(e.TrueDist))
				meshRelays = append(meshRelays, float64(meshPath.NumRelays()))
				aggRelays = append(aggRelays, float64(aggPath.NumRelays()))
			}
		}
		row.MeshAvg = stats.Mean(meshAll)
		row.HFCAggAvg = stats.Mean(aggAll)
		row.HFCFullAvg = stats.Mean(fullAll)
		row.MeshRelays = stats.Mean(meshRelays)
		row.HFCAggRelays = stats.Mean(aggRelays)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig10 renders Figure 10 as a text table.
func FormatFig10(rows []Fig10Row) string {
	out := "Figure 10: average service path length (true network delay, ms)\n"
	out += fmt.Sprintf("%-10s %12s %16s %16s %12s %12s\n",
		"proxies", "mesh", "HFC w/ agg", "HFC w/o agg", "mesh relays", "HFC relays")
	for _, r := range rows {
		out += fmt.Sprintf("%-10d %12.1f %16.1f %16.1f %12.2f %12.2f\n",
			r.Proxies, r.MeshAvg, r.HFCAggAvg, r.HFCFullAvg, r.MeshRelays, r.HFCAggRelays)
	}
	return out
}
