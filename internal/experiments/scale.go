package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/hfc"
)

// ScaleRow is one overlay size of the construction-scaling sweep: wall
// times for Zahn's clustering and the §3.3 border elections over the
// geometric engine, with no O(n²) distance matrix ever materialised.
type ScaleRow struct {
	N        int
	Clusters int
	// ClusterTime covers cluster.Cluster end to end (k-d construction,
	// Borůvka MST rounds, inconsistent-edge cut, small-cluster merge).
	ClusterTime time.Duration
	// BorderTime covers hfc.Build end to end (per-cluster indexes plus
	// every pairwise primary + backup election).
	BorderTime time.Duration
}

// Total is the combined construction time for the row.
func (r ScaleRow) Total() time.Duration { return r.ClusterTime + r.BorderTime }

// scalePoints draws n proxies from a fixed set of Gaussian-ish blobs in a
// 1000-unit GNP square — the same shape the BenchmarkGate* geometric
// benchmarks use, so the sweep and the gates measure one workload family.
func scalePoints(rng *rand.Rand, n int) []coords.Point {
	const blobs = 16
	centers := make([]coords.Point, blobs)
	for b := range centers {
		centers[b] = coords.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	pts := make([]coords.Point, n)
	for i := range pts {
		c := centers[i%blobs]
		pts[i] = coords.Point{c[0] + rng.NormFloat64()*18, c[1] + rng.NormFloat64()*18}
	}
	return pts
}

// RunScale measures end-to-end overlay construction — clustering plus
// border election — at each requested size over the spatial-index engine.
// Distances come straight from coordinates (coords.Map.Dist); the dense
// DistMatrix path is never touched, which is what lets the n=100k row
// complete in memory a complete graph could not.
func RunScale(seed int64, sizes []int) ([]ScaleRow, error) {
	if len(sizes) == 0 {
		return nil, errors.New("experiments: no scale sizes")
	}
	rows := make([]ScaleRow, 0, len(sizes))
	for _, n := range sizes {
		if n < 2 {
			return nil, fmt.Errorf("experiments: scale size %d must be >= 2", n)
		}
		rng := rand.New(rand.NewSource(seed))
		pts := scalePoints(rng, n)
		cmap, err := coords.NewMap(pts)
		if err != nil {
			return nil, err
		}

		//hfcvet:ignore detrand wall-clock construction timing column; no seeded state consumes it
		start := time.Now()
		clustering, err := cluster.Cluster(n, cmap.Dist, cluster.Config{
			Points:         cmap.Points,
			MinClusterSize: 8,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: scale n=%d cluster: %w", n, err)
		}
		clusterTime := time.Since(start)

		//hfcvet:ignore detrand wall-clock construction timing column; no seeded state consumes it
		start = time.Now()
		topo, err := hfc.Build(cmap, clustering)
		if err != nil {
			return nil, fmt.Errorf("experiments: scale n=%d hfc: %w", n, err)
		}
		borderTime := time.Since(start)
		// Validate re-elects every border with the brute O(|A|·|B|) scan;
		// it is the right sanity check at small n but would dwarf the
		// measured construction itself at the larger sizes (the indexed =
		// brute equivalence there is covered by the property tests).
		if n <= 10_000 {
			if err := topo.Validate(); err != nil {
				return nil, fmt.Errorf("experiments: scale n=%d validate: %w", n, err)
			}
		}

		rows = append(rows, ScaleRow{
			N:           n,
			Clusters:    clustering.NumClusters(),
			ClusterTime: clusterTime,
			BorderTime:  borderTime,
		})
	}
	return rows, nil
}

// FormatScale renders the sweep as the README's scaling table.
func FormatScale(rows []ScaleRow) string {
	var b strings.Builder
	b.WriteString("Construction scaling (geometric engine, no dense matrix)\n")
	b.WriteString("| proxies | clusters | clustering | border election | total |\n")
	b.WriteString("|---------|----------|------------|-----------------|-------|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %d | %d | %s | %s | %s |\n",
			r.N, r.Clusters,
			r.ClusterTime.Round(time.Millisecond),
			r.BorderTime.Round(time.Millisecond),
			r.Total().Round(time.Millisecond))
	}
	return b.String()
}
