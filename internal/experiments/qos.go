package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"hfc/internal/env"
	"hfc/internal/qos"
	"hfc/internal/routing"
	"hfc/internal/stats"
	"hfc/internal/svc"
)

// QoSRow is one constraint setting of the QoS extension experiment: flat
// full-state QoS routing vs hierarchical QoS routing over aggregates, on
// the same request stream.
type QoSRow struct {
	// MinBandwidth and MaxLoad are the request constraints.
	MinBandwidth, MaxLoad float64
	// FlatSuccess is the fraction of requests flat full-state QoS routing
	// admits; OptSuccess and PessSuccess the hierarchical fractions under
	// the optimistic and pessimistic admission policies.
	FlatSuccess, OptSuccess, PessSuccess float64
	// OptFalseBlocked and PessFalseBlocked are the fractions flat admits
	// but the respective hierarchical policy blocks — the
	// aggregation-precision cost.
	OptFalseBlocked, PessFalseBlocked float64
	// FlatAvgLen and OptAvgLen are mean true-delay path lengths over the
	// requests both flat and the optimistic router admitted.
	FlatAvgLen, OptAvgLen float64
	// Requests is the sample size.
	Requests int
}

// RunQoS sweeps constraint tightness on one environment and compares flat
// QoS routing (full per-node state) against hierarchical QoS routing
// (per-cluster aggregates). Both respect the HFC topology, so the deltas
// isolate the effect of QoS aggregation.
func RunQoS(spec env.Spec, settings []qos.Constraints, requests int) ([]QoSRow, error) {
	if len(settings) == 0 {
		return nil, errors.New("experiments: empty constraint sweep")
	}
	if requests < 1 {
		return nil, errors.New("experiments: need at least 1 request")
	}
	e, err := env.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: qos: %w", err)
	}
	prof, err := e.QoSProfile(rand.New(rand.NewSource(spec.Seed+99)), 0, 0.95)
	if err != nil {
		return nil, err
	}
	fw := e.Framework
	topo := fw.Topology()
	caps := fw.Capabilities()
	provs := routing.CapabilityProviders(caps)
	metric := routing.HFCMetric{T: topo}
	optRouter, err := qos.NewRouter(topo, fw.States(), caps, prof)
	if err != nil {
		return nil, err
	}
	pessRouter, err := qos.NewRouter(topo, fw.States(), caps, prof)
	if err != nil {
		return nil, err
	}
	pessRouter.Policy = qos.PolicyPessimistic

	reqs := make([]svc.Request, requests)
	for i := range reqs {
		r, err := e.NextRequest()
		if err != nil {
			return nil, err
		}
		reqs[i] = r
	}

	rows := make([]QoSRow, 0, len(settings))
	for _, cons := range settings {
		row := QoSRow{MinBandwidth: cons.MinBandwidth, MaxLoad: cons.MaxLoad, Requests: requests}
		var flatOK, optOK, pessOK, optBlocked, pessBlocked int
		var flatLens, optLens []float64
		for _, req := range reqs {
			flatPath, flatErr := qos.FindPath(req, provs, metric, prof, cons, metric)
			optPath, optErr := optRouter.Route(req, cons)
			_, pessErr := pessRouter.Route(req, cons)
			if flatErr == nil {
				flatOK++
				if err := qos.VerifyPath(flatPath, prof, cons); err != nil {
					return nil, fmt.Errorf("experiments: qos: flat path violates constraints: %w", err)
				}
			}
			if optErr == nil {
				optOK++
				if err := qos.VerifyPath(optPath, prof, cons); err != nil {
					return nil, fmt.Errorf("experiments: qos: hierarchical path violates constraints: %w", err)
				}
			}
			if pessErr == nil {
				pessOK++
			}
			if flatErr == nil && optErr != nil {
				optBlocked++
			}
			if flatErr == nil && pessErr != nil {
				pessBlocked++
			}
			if flatErr == nil && optErr == nil {
				flatLens = append(flatLens, flatPath.Length(e.TrueDist))
				optLens = append(optLens, optPath.Length(e.TrueDist))
			}
		}
		row.FlatSuccess = float64(flatOK) / float64(requests)
		row.OptSuccess = float64(optOK) / float64(requests)
		row.PessSuccess = float64(pessOK) / float64(requests)
		row.OptFalseBlocked = float64(optBlocked) / float64(requests)
		row.PessFalseBlocked = float64(pessBlocked) / float64(requests)
		row.FlatAvgLen = stats.Mean(flatLens)
		row.OptAvgLen = stats.Mean(optLens)
		rows = append(rows, row)
	}
	return rows, nil
}

// DefaultQoSSettings returns the constraint sweep used by cmd/experiments:
// bandwidth demands climbing through the stub/access capacity classes,
// crossed with a moderate load ceiling.
func DefaultQoSSettings() []qos.Constraints {
	return []qos.Constraints{
		{MinBandwidth: 0, MaxLoad: 0},
		{MinBandwidth: 0, MaxLoad: 0.5},
		{MinBandwidth: 10, MaxLoad: 0.5},
		{MinBandwidth: 25, MaxLoad: 0.5},
		{MinBandwidth: 40, MaxLoad: 0.5},
		{MinBandwidth: 60, MaxLoad: 0.5},
		{MinBandwidth: 25, MaxLoad: 0.25},
	}
}

// FormatQoS renders the QoS experiment table.
func FormatQoS(rows []QoSRow) string {
	out := "QoS extension (§7): flat full-state vs hierarchical aggregated QoS routing\n"
	out += fmt.Sprintf("%-7s %-8s %10s %10s %10s %11s %11s %9s %9s\n",
		"minBW", "maxLoad", "flat", "hier-opt", "hier-pess", "opt-blockd", "pess-blockd", "flat len", "opt len")
	for _, r := range rows {
		maxLoad := r.MaxLoad
		if maxLoad == 0 {
			maxLoad = 1
		}
		out += fmt.Sprintf("%-7.0f %-8.2f %9.1f%% %9.1f%% %9.1f%% %10.1f%% %10.1f%% %9.1f %9.1f\n",
			r.MinBandwidth, maxLoad, r.FlatSuccess*100, r.OptSuccess*100, r.PessSuccess*100,
			r.OptFalseBlocked*100, r.PessFalseBlocked*100, r.FlatAvgLen, r.OptAvgLen)
	}
	return out
}
