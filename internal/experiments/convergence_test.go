package experiments

import (
	"strings"
	"testing"

	"hfc/internal/env"
)

func TestRunConvergence(t *testing.T) {
	spec := env.SmallSpec(501)
	spec.Proxies = 40
	rows, err := RunConvergence(spec, []float64{0, 0.3}, 3, 40)
	if err != nil {
		t.Fatalf("RunConvergence: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	lossless, lossy := rows[0], rows[1]
	// Without loss the protocol converges in exactly 2 rounds.
	if lossless.MeanRounds != 2 || lossless.Unconverged != 0 || lossless.DroppedPerTrial != 0 {
		t.Errorf("lossless row = %+v, want 2 rounds, 0 drops", lossless)
	}
	// With loss it takes at least as long and drops something.
	if lossy.MeanRounds < lossless.MeanRounds {
		t.Errorf("lossy mean rounds %v below lossless %v", lossy.MeanRounds, lossless.MeanRounds)
	}
	if lossy.DroppedPerTrial == 0 {
		t.Error("no drops recorded at rate 0.3")
	}
	if !strings.Contains(FormatConvergence(rows), "resilience") {
		t.Error("FormatConvergence missing header")
	}
}

func TestRunConvergenceValidation(t *testing.T) {
	spec := env.SmallSpec(1)
	if _, err := RunConvergence(spec, nil, 1, 5); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := RunConvergence(spec, []float64{0}, 0, 5); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := RunConvergence(spec, []float64{0}, 1, 0); err == nil {
		t.Error("zero rounds accepted")
	}
}
