package experiments

import (
	"strings"
	"testing"

	"hfc/internal/env"
)

func TestRunChaosDrill(t *testing.T) {
	spec := env.SmallSpec(701)
	rows, err := RunChaosDrill(spec, 2, 20)
	if err != nil {
		t.Fatalf("RunChaosDrill: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The issue's acceptance bar: degraded answers are stale but never
		// wrong, reconvergence after the heal is bounded, quarantines
		// drain, and the incremental border state matches a fresh rebuild.
		if r.DegradedValid != r.DegradedDuringCut {
			t.Errorf("cluster %d: %d of %d degraded serves validated", r.Cluster, r.DegradedValid, r.DegradedDuringCut)
		}
		if got := r.FreshDuringCut + r.DegradedDuringCut + r.FailedDuringCut; got != r.Requests {
			t.Errorf("cluster %d: outcomes %d != requests %d", r.Cluster, got, r.Requests)
		}
		if r.DroppedByPolicy == 0 {
			t.Errorf("cluster %d: partition dropped nothing", r.Cluster)
		}
		if r.ReconvergeRounds >= convergeCap {
			t.Errorf("cluster %d: no re-convergence within %d rounds after heal", r.Cluster, convergeCap)
		}
		if !r.BordersMatchRebuild {
			t.Errorf("cluster %d: border state diverged from fresh rebuild after heal", r.Cluster)
		}
		if r.PostHealSuccess < 0.95 {
			t.Errorf("cluster %d: post-heal success %.3f, want >= 0.95", r.Cluster, r.PostHealSuccess)
		}
	}
	if !strings.Contains(FormatChaosDrill(rows), "reconverge") {
		t.Error("FormatChaosDrill missing header")
	}
}

func TestRunChaosDrillValidation(t *testing.T) {
	spec := env.SmallSpec(1)
	if _, err := RunChaosDrill(spec, 0, 5); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := RunChaosDrill(spec, 1, 0); err == nil {
		t.Error("zero requests accepted")
	}
}
