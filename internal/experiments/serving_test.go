package experiments

import (
	"strings"
	"testing"

	"hfc/internal/env"
)

func TestRunServe(t *testing.T) {
	spec := env.SmallSpec(303)
	spec.Proxies = 40
	rows, err := RunServe(spec, 40, []int{1, 4})
	if err != nil {
		t.Fatalf("RunServe: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Requests != 3*40 {
			t.Errorf("workers %d: requests = %d, want %d", r.Workers, r.Requests, 3*40)
		}
		if r.OpsPerSec <= 0 {
			t.Errorf("workers %d: non-positive throughput %v", r.Workers, r.OpsPerSec)
		}
		// Two of three passes repeat the stream, so the cache must serve a
		// substantial fraction.
		if r.HitRate <= 0.3 {
			t.Errorf("workers %d: hit rate %v, want > 0.3", r.Workers, r.HitRate)
		}
		if r.BatchOpsPerSec <= 0 {
			t.Errorf("workers %d: non-positive batch throughput %v", r.Workers, r.BatchOpsPerSec)
		}
	}
	if rows[0].Speedup != 1 {
		t.Errorf("first row speedup = %v, want 1", rows[0].Speedup)
	}
	out := FormatServe(rows)
	if !strings.Contains(out, "ops/sec") || !strings.Contains(out, "hit-rate") {
		t.Errorf("FormatServe output missing columns:\n%s", out)
	}

	if _, err := RunServe(spec, 0, []int{1}); err == nil {
		t.Error("zero requests accepted")
	}
	if _, err := RunServe(spec, 5, nil); err == nil {
		t.Error("empty worker sweep accepted")
	}
}
