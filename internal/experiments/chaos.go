package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"time"

	"hfc/internal/chaos"
	"hfc/internal/env"
	"hfc/internal/hfc"
	"hfc/internal/overlay"
	"hfc/internal/svc"
)

// ChaosDrillRow is one trial of the partition drill: one cluster is cut off
// from the rest of the overlay, requests keep arriving, the cut heals, and
// the system must reconverge to exactly the fault-free border state.
type ChaosDrillRow struct {
	// Cluster is the minority cluster partitioned this trial; Partitioned
	// is its node count.
	Cluster, Partitioned int
	// FreshDuringCut / DegradedDuringCut / FailedDuringCut classify the
	// request outcomes while the partition held: resolved normally, served
	// stale from the last-known-good store, or failed outright.
	FreshDuringCut, DegradedDuringCut, FailedDuringCut int
	// DegradedValid counts degraded results that still validate against
	// the (unchanged) deployment — the "stale, never wrong" promise; it
	// must equal DegradedDuringCut.
	DegradedValid int
	// DroppedByPolicy is how many overlay messages the injected partition
	// swallowed.
	DroppedByPolicy int
	// ReconvergeRounds is how many §4 rounds after the heal until the live
	// tables verify; DrainRounds is how many further rounds until the
	// accrual detector released every quarantined node.
	ReconvergeRounds, DrainRounds int
	// BordersMatchRebuild reports whether the incremental border state
	// after the drain is byte-equal to a from-scratch rebuild.
	BordersMatchRebuild bool
	// PostHealSuccess is the fraction of the request set answered fresh
	// and valid after the heal.
	PostHealSuccess float64
	Requests        int
}

// chaosDrillConfig is the overlay configuration of the drill: fast RPC
// deadlines so cut links are detected in wall-clock milliseconds, the
// accrual health detector, degraded serving, and the chaos engine wired in
// as the link policy.
func chaosDrillConfig(eng *chaos.Engine, dropSeed int64) overlay.Config {
	return overlay.Config{
		DropSeed:       dropSeed,
		RouteTimeout:   50 * time.Millisecond,
		RPCTimeout:     15 * time.Millisecond,
		RPCRetries:     1,
		RPCBackoff:     time.Millisecond,
		LinkPolicy:     eng.Policy,
		Health:         overlay.HealthConfig{Enabled: true, MaxScore: 4},
		DegradedRoutes: true,
		CacheRoutes:    true,
	}
}

// RunChaosDrill runs the partition→heal chaos drill on the live runtime:
// per trial, warm a request set fresh, cut one cluster off with a symmetric
// chaos partition, keep serving (counting fresh, degraded-but-valid, and
// failed answers), heal, and verify bounded reconvergence, quarantine
// drain, and byte-identical border state against a from-scratch rebuild.
func RunChaosDrill(spec env.Spec, trials, requests int) ([]ChaosDrillRow, error) {
	if trials < 1 || requests < 1 {
		return nil, errors.New("experiments: trials and requests must be >= 1")
	}
	e, err := env.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos drill: %w", err)
	}
	topo := e.Framework.Topology()
	caps := e.Framework.Capabilities()

	rows := make([]ChaosDrillRow, 0, trials)
	for trial := 0; trial < trials; trial++ {
		c := trial % topo.NumClusters()
		var minority, majority []int
		for i := 0; i < topo.N(); i++ {
			if topo.ClusterOf(i) == c {
				minority = append(minority, i)
			} else {
				majority = append(majority, i)
			}
		}
		row := ChaosDrillRow{Cluster: c, Partitioned: len(minority), Requests: requests}

		eng := chaos.NewEngine(uint64(spec.Seed)+uint64(trial)*7919, 0)
		sys, err := overlay.New(topo, caps, chaosDrillConfig(eng, spec.Seed+int64(trial)*7919))
		if err != nil {
			return nil, err
		}
		if err := sys.Start(); err != nil {
			return nil, err
		}
		if err := converge(sys, sys.Converged, convergeCap); err != nil {
			return nil, fmt.Errorf("experiments: chaos drill: fault-free phase: %w", err)
		}

		// Warm phase: resolve the request set fresh, populating route
		// caches and the last-known-good store.
		reqs := make([]svc.Request, 0, requests)
		for q := 0; q < requests; q++ {
			req, err := e.NextRequest()
			if err != nil {
				return nil, err
			}
			if _, err := sys.Route(req); err != nil {
				return nil, fmt.Errorf("experiments: chaos drill: warm route: %w", err)
			}
			reqs = append(reqs, req)
		}

		// Cut: the minority cluster loses both directions to everyone
		// else. A couple of protocol rounds let the accrual detector see
		// the silence.
		if err := eng.Inject(chaos.Partition("split", minority, majority, true)); err != nil {
			return nil, err
		}
		for r := 0; r < 2; r++ {
			sys.TriggerStateRound()
			sys.Quiesce()
		}
		before := sys.FaultCounters()
		for _, req := range reqs {
			res, err := sys.Route(req)
			switch {
			case err != nil:
				row.FailedDuringCut++
			case res.Degraded:
				row.DegradedDuringCut++
				if res.Path.Validate(req, caps) == nil {
					row.DegradedValid++
				}
			default:
				row.FreshDuringCut++
			}
		}
		after := sys.FaultCounters()
		row.DroppedByPolicy = after.DroppedByPolicy - before.DroppedByPolicy

		// Heal: bounded reconvergence of the live tables, then the
		// detector must release every quarantined node.
		eng.HealAll()
		row.ReconvergeRounds = convergeCap
		for r := 1; r <= convergeCap; r++ {
			sys.TriggerStateRound()
			sys.Quiesce()
			ok, err := sys.ConvergedLive()
			if err != nil {
				return nil, err
			}
			if ok {
				row.ReconvergeRounds = r
				break
			}
		}
		for r := 0; r < 20 && len(sys.QuarantinedNodes()) > 0; r++ {
			sys.TriggerStateRound()
			sys.Quiesce()
			row.DrainRounds++
		}
		fresh := hfc.NewDynamic(topo)
		if err := fresh.Rebuild(); err != nil {
			return nil, err
		}
		row.BordersMatchRebuild = reflect.DeepEqual(sys.BorderSnapshot(), fresh.Snapshot())

		okReqs := 0
		for _, req := range reqs {
			res, err := sys.Route(req)
			if err == nil && !res.Degraded && res.Path.Validate(req, caps) == nil {
				okReqs++
			}
		}
		row.PostHealSuccess = float64(okReqs) / float64(len(reqs))

		if err := sys.Stop(); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatChaosDrill renders the partition-drill table.
func FormatChaosDrill(rows []ChaosDrillRow) string {
	out := "Chaos drill: partition a cluster, serve degraded, heal, reconverge\n"
	out += fmt.Sprintf("%-8s %6s %6s %9s %7s %8s %11s %6s %8s %10s\n",
		"cluster", "cut", "fresh", "degraded", "valid", "failed", "reconverge", "drain", "borders", "post-heal")
	for _, r := range rows {
		borders := "match"
		if !r.BordersMatchRebuild {
			borders = "DIVERGED"
		}
		out += fmt.Sprintf("%-8d %6d %6d %9d %7d %8d %11d %6d %8s %9.1f%%\n",
			r.Cluster, r.Partitioned, r.FreshDuringCut, r.DegradedDuringCut,
			r.DegradedValid, r.FailedDuringCut, r.ReconvergeRounds, r.DrainRounds,
			borders, 100*r.PostHealSuccess)
	}
	return out
}
