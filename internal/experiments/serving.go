package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"hfc/internal/env"
	"hfc/internal/svc"
)

// ServeRow is one worker-count setting of the serving-throughput
// experiment: the same request stream resolved through the concurrent
// serving engine at a given fan-out.
type ServeRow struct {
	// Workers is the resolution fan-out (1 = serial baseline).
	Workers int
	// Requests is the number of resolutions performed (cold + warm pass).
	Requests int
	// OpsPerSec is the end-to-end resolution throughput.
	OpsPerSec float64
	// Speedup is OpsPerSec relative to the first row of the sweep (pass
	// workers=1 first for a serial baseline).
	Speedup float64
	// HitRate is the route-cache hit fraction over the run.
	HitRate float64
	// Deduped counts resolutions answered by joining an in-flight
	// computation.
	Deduped int64
	// BatchOpsPerSec is the throughput of the same stream submitted as
	// ResolveBatch calls (one per pass) at the row's worker count, on a
	// second fresh engine: duplicate requests in a pass resolve once and
	// share the result.
	BatchOpsPerSec float64
	// BatchSpeedup is BatchOpsPerSec over the row's OpsPerSec.
	BatchSpeedup float64
}

// RunServe measures the serving engine's request throughput at several
// worker counts. Each run resolves the same stream — a cold pass over
// distinct requests followed by repeat passes that exercise the cache — on
// a fresh engine, so rows are comparable. Routing results are identical
// across worker counts; only the timing differs.
func RunServe(spec env.Spec, requests int, workerCounts []int) ([]ServeRow, error) {
	if requests < 1 {
		return nil, errors.New("experiments: need at least 1 request")
	}
	if len(workerCounts) == 0 {
		return nil, errors.New("experiments: empty worker sweep")
	}
	spec.ServeEngine = true
	e, err := env.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: serve: %w", err)
	}
	reqs := make([]svc.Request, requests)
	for i := range reqs {
		if reqs[i], err = e.NextRequest(); err != nil {
			return nil, err
		}
	}
	// Three passes over the stream: one cold, two warm (cache + dedup).
	stream := make([]svc.Request, 0, 3*requests)
	for pass := 0; pass < 3; pass++ {
		stream = append(stream, reqs...)
	}

	rows := make([]ServeRow, 0, len(workerCounts))
	var serialOps float64
	for _, w := range workerCounts {
		// A fresh engine per row: cache and counters start cold.
		fresh, err := env.Build(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: serve: %w", err)
		}
		eng := fresh.Framework.Engine()
		//hfcvet:ignore detrand wall-clock throughput timing; route results stay seed-deterministic
		start := time.Now()
		_, errs := eng.ResolveAll(stream, w)
		elapsed := time.Since(start)
		for i, rerr := range errs {
			if rerr != nil {
				return nil, fmt.Errorf("experiments: serve: request %d: %w", i, rerr)
			}
		}
		st := eng.Stats()
		lookups := st.Cache.Hits + st.Cache.Misses
		row := ServeRow{
			Workers:   w,
			Requests:  len(stream),
			OpsPerSec: float64(len(stream)) / elapsed.Seconds(),
			Deduped:   st.Deduped,
		}
		if lookups > 0 {
			row.HitRate = float64(st.Cache.Hits) / float64(lookups)
		}
		if serialOps == 0 {
			serialOps = row.OpsPerSec
		}
		row.Speedup = row.OpsPerSec / serialOps

		// The batched counterpart: the identical 3-pass stream submitted as
		// one ResolveBatch call, again on a fresh engine so caches start
		// cold. The whole stream goes in one batch because the stream's
		// duplication is across passes — batching amortizes front matter
		// only for duplicates inside a single call, which is exactly what a
		// request-coalescing server hands it.
		batchFresh, err := env.Build(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: serve: %w", err)
		}
		beng := batchFresh.Framework.Engine()
		//hfcvet:ignore detrand wall-clock throughput timing; route results stay seed-deterministic
		bstart := time.Now()
		_, berrs := beng.ResolveBatch(stream, w)
		for i, rerr := range berrs {
			if rerr != nil {
				return nil, fmt.Errorf("experiments: serve batch: request %d: %w", i, rerr)
			}
		}
		row.BatchOpsPerSec = float64(len(stream)) / time.Since(bstart).Seconds()
		row.BatchSpeedup = row.BatchOpsPerSec / row.OpsPerSec
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatServe renders the serving-throughput sweep.
func FormatServe(rows []ServeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving-engine throughput (sharded cache + provider indexes + dedup)\n")
	fmt.Fprintf(&b, "%8s  %9s  %10s  %8s  %8s  %8s  %12s  %8s\n",
		"workers", "requests", "ops/sec", "speedup", "hit-rate", "deduped", "batch-ops/s", "batch-x")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d  %9d  %10.0f  %7.2fx  %7.1f%%  %8d  %12.0f  %7.2fx\n",
			r.Workers, r.Requests, r.OpsPerSec, r.Speedup, 100*r.HitRate, r.Deduped,
			r.BatchOpsPerSec, r.BatchSpeedup)
	}
	return b.String()
}
