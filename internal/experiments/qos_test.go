package experiments

import (
	"strings"
	"testing"

	"hfc/internal/env"
	"hfc/internal/qos"
)

func TestRunQoS(t *testing.T) {
	spec := env.SmallSpec(401)
	rows, err := RunQoS(spec, DefaultQoSSettings(), 60)
	if err != nil {
		t.Fatalf("RunQoS: %v", err)
	}
	if len(rows) != len(DefaultQoSSettings()) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// Success rates are probabilities.
		for _, v := range []float64{r.FlatSuccess, r.OptSuccess, r.PessSuccess, r.OptFalseBlocked, r.PessFalseBlocked} {
			if v < 0 || v > 1 {
				t.Fatalf("rate %v out of [0,1] in %+v", v, r)
			}
		}
		// Hierarchical can never admit more than flat (flat has full
		// state and the same topology constraint), and pessimistic can
		// never admit more than optimistic.
		if r.OptSuccess > r.FlatSuccess+1e-9 {
			t.Errorf("optimistic success %v above flat %v", r.OptSuccess, r.FlatSuccess)
		}
		if r.PessSuccess > r.OptSuccess+1e-9 {
			t.Errorf("pessimistic success %v above optimistic %v", r.PessSuccess, r.OptSuccess)
		}
		// Flat's delay-optimal feasible path is a lower bound.
		if r.OptAvgLen != 0 && r.FlatAvgLen > r.OptAvgLen+1e-9 {
			t.Errorf("flat avg %v above hierarchical %v", r.FlatAvgLen, r.OptAvgLen)
		}
	}
	// The unconstrained row must admit everything everywhere.
	if rows[0].FlatSuccess != 1 || rows[0].OptSuccess != 1 || rows[0].PessSuccess != 1 {
		t.Errorf("unconstrained row not fully admitted: %+v", rows[0])
	}
	if !strings.Contains(FormatQoS(rows), "QoS extension") {
		t.Error("FormatQoS missing header")
	}
}

func TestRunQoSValidation(t *testing.T) {
	spec := env.SmallSpec(1)
	if _, err := RunQoS(spec, nil, 5); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := RunQoS(spec, []qos.Constraints{{}}, 0); err == nil {
		t.Error("zero requests accepted")
	}
}
