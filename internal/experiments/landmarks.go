package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"hfc/internal/coords"
	"hfc/internal/netsim"
	"hfc/internal/stats"
	"hfc/internal/topology"
)

// LandmarkRow is one placement strategy of the landmark ablation (A8).
type LandmarkRow struct {
	Strategy       string
	MedianRelError float64
	P90RelError    float64
	// MinPairSpread is the smallest true distance between any two chosen
	// landmarks (higher = better spread).
	MinPairSpread float64
}

// RunAblationLandmarks compares landmark placement strategies — uniform
// random vs greedy farthest-point — by the relative error of the resulting
// GNP embedding over the same proxy population (the placement question Ng &
// Zhang's GNP paper studies), averaged over `trials` independent draws.
func RunAblationLandmarks(seed int64, physSize, proxies, k, errSamples, trials int) ([]LandmarkRow, error) {
	if k < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 landmarks, got %d", k)
	}
	if proxies < 2 || errSamples < 1 || trials < 1 {
		return nil, errors.New("experiments: invalid proxy, sample, or trial count")
	}
	rng := rand.New(rand.NewSource(seed))
	cfg, err := topology.ConfigForSize(physSize)
	if err != nil {
		return nil, err
	}
	phys, err := topology.GenerateTransitStub(rng, cfg)
	if err != nil {
		return nil, err
	}
	net, err := netsim.New(phys)
	if err != nil {
		return nil, err
	}
	stubs := phys.StubNodes()
	if len(stubs) < proxies+k {
		return nil, fmt.Errorf("experiments: %d stub nodes for %d proxies + %d landmarks", len(stubs), proxies, k)
	}
	// Fixed proxy population; landmark strategies draw from the remainder.
	perm := rng.Perm(len(stubs))
	proxyIDs := make([]int, proxies)
	for i := range proxyIDs {
		proxyIDs[i] = stubs[perm[i]]
	}
	pool := make([]int, 0, len(stubs)-proxies)
	for _, idx := range perm[proxies:] {
		pool = append(pool, stubs[idx])
	}

	strategies := []struct {
		name   string
		choose func(*rand.Rand) ([]int, error)
	}{
		{"random", func(r *rand.Rand) ([]int, error) {
			return coords.SelectLandmarksRandom(r, pool, k)
		}},
		{"farthest-point", func(r *rand.Rand) ([]int, error) {
			return coords.SelectLandmarksFarthestPoint(r, net, pool, k, 3)
		}},
	}
	rows := make([]LandmarkRow, 0, len(strategies))
	for i, s := range strategies {
		var medians, p90s, spreads []float64
		for trial := 0; trial < trials; trial++ {
			srng := rand.New(rand.NewSource(seed + int64(i)*31 + int64(trial)*7919))
			landmarks, err := s.choose(srng)
			if err != nil {
				return nil, fmt.Errorf("experiments: landmarks %s: %w", s.name, err)
			}
			cmap, _, err := coords.BuildMap(srng, net, landmarks, proxyIDs, 2, 5)
			if err != nil {
				return nil, fmt.Errorf("experiments: landmarks %s: %w", s.name, err)
			}
			var errs []float64
			for len(errs) < errSamples {
				u, v := srng.Intn(proxies), srng.Intn(proxies)
				if u == v {
					continue
				}
				pred := cmap.Dist(u, v)
				actual := net.Latency(proxyIDs[u], proxyIDs[v])
				errs = append(errs, coords.RelativeError(pred, actual))
			}
			spread := -1.0
			for a := 0; a < len(landmarks); a++ {
				for b := a + 1; b < len(landmarks); b++ {
					d := net.Latency(landmarks[a], landmarks[b])
					if spread < 0 || d < spread {
						spread = d
					}
				}
			}
			medians = append(medians, stats.Median(errs))
			p90s = append(p90s, stats.Percentile(errs, 90))
			spreads = append(spreads, spread)
		}
		rows = append(rows, LandmarkRow{
			Strategy:       s.name,
			MedianRelError: stats.Mean(medians),
			P90RelError:    stats.Mean(p90s),
			MinPairSpread:  stats.Mean(spreads),
		})
	}
	return rows, nil
}

// FormatAblationLandmarks renders the A8 table.
func FormatAblationLandmarks(rows []LandmarkRow) string {
	out := "Ablation A8: landmark placement strategy (GNP embedding quality)\n"
	out += fmt.Sprintf("%-16s %14s %14s %16s\n", "strategy", "median relerr", "p90 relerr", "min pair spread")
	for _, r := range rows {
		out += fmt.Sprintf("%-16s %14.3f %14.3f %16.1f\n", r.Strategy, r.MedianRelError, r.P90RelError, r.MinPairSpread)
	}
	return out
}
