package geo_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"hfc/internal/coords"
	"hfc/internal/geo"
)

// FuzzGeoIndex drives randomized point sets (optionally snapped to a
// tie-heavy integer lattice) through every index strategy and asserts the
// k-d tree and grid agree with the brute scan on k-NN, nearest, bounded
// nearest, range, and bichromatic closest-pair queries — the exactness
// contract the construction paths rely on.
func FuzzGeoIndex(f *testing.F) {
	f.Add(int64(1), 10, false, 3, 0.5, 0.5)
	f.Add(int64(42), 200, false, 8, 100.0, -50.0)
	f.Add(int64(7), 97, true, 1, 2.0, 2.0)
	f.Add(int64(99), 300, true, 16, 4.0, 0.0)
	f.Add(int64(-3), 65, false, 5, 1e6, 1e6)
	f.Fuzz(func(t *testing.T, seed int64, n int, latticed bool, k int, qx, qy float64) {
		if n < 0 {
			n = -n
		}
		n = n%300 + 2
		if k < 0 {
			k = -k
		}
		k = k%20 + 1
		if math.IsNaN(qx) || math.IsNaN(qy) || qx < -1e12 || qx > 1e12 || qy < -1e12 || qy > 1e12 {
			t.Skip("non-finite or extreme query")
		}
		rng := rand.New(rand.NewSource(seed))
		pts := make([]coords.Point, n)
		for i := range pts {
			if latticed {
				pts[i] = coords.Point{float64(rng.Intn(6)), float64(rng.Intn(6))}
			} else {
				pts[i] = coords.Point{rng.Float64() * 100, rng.Float64() * 100}
			}
		}
		q := coords.Point{qx, qy}
		brute, err := geo.NewIndex(pts, nil, geo.Brute)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []geo.Strategy{geo.KDTree, geo.Grid} {
			idx, err := geo.NewIndex(pts, nil, strat)
			if err != nil {
				t.Fatal(err)
			}
			wantNb, wantOK := brute.Nearest(q, nil)
			gotNb, gotOK := idx.Nearest(q, nil)
			if gotOK != wantOK || gotNb != wantNb {
				t.Fatalf("%v: Nearest=%v,%v want %v,%v", strat, gotNb, gotOK, wantNb, wantOK)
			}
			if wantOK {
				for _, bound := range []float64{wantNb.Dist, wantNb.Dist * 2} {
					got, ok := idx.NearestBounded(q, bound, nil)
					if !ok || got != wantNb {
						t.Fatalf("%v: NearestBounded(%g)=%v,%v want %v", strat, bound, got, ok, wantNb)
					}
				}
			}
			want := brute.KNN(q, k, nil)
			got := idx.KNN(q, k, nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: KNN(%d)=%v want %v", strat, k, got, want)
			}
			r := wantNb.Dist * 1.5
			wantR := brute.RangeSearch(q, r)
			gotR := idx.RangeSearch(q, r)
			if !(len(gotR) == 0 && len(wantR) == 0) && !reflect.DeepEqual(gotR, wantR) {
				t.Fatalf("%v: RangeSearch(%g)=%v want %v", strat, r, gotR, wantR)
			}
		}
		// Bichromatic closest pair: split members in half.
		var a, b []int
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				a = append(a, i)
			} else {
				b = append(b, i)
			}
		}
		want, err := geo.ClosestPair(pts, a, b, geo.Brute)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []geo.Strategy{geo.KDTree, geo.Grid} {
			got, err := geo.ClosestPair(pts, a, b, strat)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v: ClosestPair=%v want %v", strat, got, want)
			}
		}
	})
}
