package geo_test

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"hfc/internal/coords"
	"hfc/internal/geo"
)

// refNearest is the test-local reference scan, written independently of the
// package's bruteIndex so the reference itself is under test too.
func refNearest(pts []coords.Point, members []int, q coords.Point, skip func(int) bool) (geo.Neighbor, bool) {
	best := geo.Neighbor{Idx: -1, Dist: math.Inf(1)}
	for _, m := range members {
		if skip != nil && skip(m) {
			continue
		}
		d := coords.Dist(q, pts[m])
		//hfcvet:ignore floatdist the reference mirrors the engine's exact (dist, idx) tie order
		if d < best.Dist || (d == best.Dist && m < best.Idx) {
			best = geo.Neighbor{Idx: m, Dist: d}
		}
	}
	return best, best.Idx >= 0
}

func refKNN(pts []coords.Point, members []int, q coords.Point, k int, skip func(int) bool) []geo.Neighbor {
	var all []geo.Neighbor
	for _, m := range members {
		if skip != nil && skip(m) {
			continue
		}
		all = append(all, geo.Neighbor{Idx: m, Dist: coords.Dist(q, pts[m])})
	}
	sort.Slice(all, func(i, j int) bool {
		//hfcvet:ignore floatdist the reference mirrors the engine's exact (dist, idx) tie order
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Idx < all[j].Idx
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func refRange(pts []coords.Point, members []int, q coords.Point, r float64) []int {
	var out []int
	for _, m := range members {
		if coords.Dist(q, pts[m]) <= r {
			out = append(out, m)
		}
	}
	sort.Ints(out)
	return out
}

func refClosestPair(pts []coords.Point, membersA, membersB []int) (geo.Pair, bool) {
	best := geo.Pair{A: -1, B: -1, Dist: math.Inf(1)}
	found := false
	for _, a := range membersA {
		for _, b := range membersB {
			d := coords.Dist(pts[a], pts[b])
			//hfcvet:ignore floatdist the reference mirrors the engine's exact (dist, a, b) tie order
			better := d < best.Dist || (d == best.Dist && (a < best.A || (a == best.A && b < best.B)))
			if !found || better {
				best = geo.Pair{A: a, B: b, Dist: d}
				found = true
			}
		}
	}
	return best, found
}

// pointSets generates the adversarial families the engine must stay exact
// on: uniform noise, tight clustered blobs, an integer lattice with heavy
// exact distance ties, duplicated points, and a degenerate collinear set.
func pointSets(rng *rand.Rand, n, dim int) map[string][]coords.Point {
	uniform := make([]coords.Point, n)
	for i := range uniform {
		p := make(coords.Point, dim)
		for a := range p {
			p[a] = rng.Float64() * 1000
		}
		uniform[i] = p
	}
	blobs := make([]coords.Point, n)
	for i := range blobs {
		p := make(coords.Point, dim)
		c := float64(i % 4)
		for a := range p {
			p[a] = c*300 + rng.NormFloat64()*5
		}
		blobs[i] = p
	}
	lattice := make([]coords.Point, n)
	for i := range lattice {
		p := make(coords.Point, dim)
		for a := range p {
			p[a] = float64(rng.Intn(5))
		}
		lattice[i] = p
	}
	collinear := make([]coords.Point, n)
	span := n/2 + 1
	for i := range collinear {
		p := make(coords.Point, dim)
		p[0] = float64(rng.Intn(span))
		collinear[i] = p
	}
	return map[string][]coords.Point{
		"uniform":   uniform,
		"blobs":     blobs,
		"lattice":   lattice,
		"collinear": collinear,
	}
}

var allStrategies = []geo.Strategy{geo.Brute, geo.KDTree, geo.Grid}

func TestIndexMatchesReference(t *testing.T) {
	for _, n := range []int{1, 7, 60, 300} {
		rng := rand.New(rand.NewSource(int64(n)))
		for name, pts := range pointSets(rng, n, 2) {
			members := make([]int, 0, n)
			for i := 0; i < n; i++ {
				if n < 10 || i%3 != 0 { // exercise proper subsets too
					members = append(members, i)
				}
			}
			queries := make([]coords.Point, 12)
			for i := range queries {
				queries[i] = coords.Point{rng.Float64()*1200 - 100, rng.Float64()*1200 - 100}
			}
			queries = append(queries, pts[0]) // exact-hit query
			skips := map[string]func(int) bool{
				"none": nil,
				"even": func(j int) bool { return j%2 == 0 },
			}
			for _, strat := range allStrategies {
				idx, err := geo.NewIndex(pts, members, strat)
				if err != nil {
					t.Fatalf("%s/%v: NewIndex: %v", name, strat, err)
				}
				if idx.Size() != len(members) {
					t.Fatalf("%s/%v: Size=%d want %d", name, strat, idx.Size(), len(members))
				}
				for qi, q := range queries {
					for skipName, skip := range skips {
						wantNb, wantOK := refNearest(pts, members, q, skip)
						gotNb, gotOK := idx.Nearest(q, skip)
						if gotOK != wantOK || (wantOK && gotNb != wantNb) {
							t.Fatalf("%s/%v q%d skip=%s: Nearest=%v,%v want %v,%v",
								name, strat, qi, skipName, gotNb, gotOK, wantNb, wantOK)
						}
						for _, k := range []int{1, 3, 8, len(members) + 5} {
							want := refKNN(pts, members, q, k, skip)
							got := idx.KNN(q, k, skip)
							if len(got) == 0 && len(want) == 0 {
								continue
							}
							if !reflect.DeepEqual(got, want) {
								t.Fatalf("%s/%v q%d skip=%s k=%d: KNN=%v want %v",
									name, strat, qi, skipName, k, got, want)
							}
						}
						// NearestBounded contract: exact whenever the true
						// minimum is within the bound.
						for _, scale := range []float64{0.5, 1.0, 2.0} {
							if !wantOK {
								continue
							}
							bound := wantNb.Dist * scale
							got, ok := idx.NearestBounded(q, bound, skip)
							if wantNb.Dist <= bound && (!ok || got != wantNb) {
								t.Fatalf("%s/%v q%d skip=%s bound=%g: NearestBounded=%v,%v want %v",
									name, strat, qi, skipName, bound, got, ok, wantNb)
							}
						}
					}
					for _, r := range []float64{0, 3, 50, 400, 2000} {
						want := refRange(pts, members, q, r)
						got := idx.RangeSearch(q, r)
						if len(got) == 0 && len(want) == 0 {
							continue
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s/%v q%d r=%g: RangeSearch=%v want %v",
								name, strat, qi, r, got, want)
						}
					}
				}
			}
		}
	}
}

func TestClosestPairMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{4, 40, 200} {
		for name, pts := range pointSets(rng, n, 2) {
			var membersA, membersB []int
			for i := 0; i < n; i++ {
				if i%2 == 0 {
					membersA = append(membersA, i)
				} else {
					membersB = append(membersB, i)
				}
			}
			want, _ := refClosestPair(pts, membersA, membersB)
			for _, strat := range allStrategies {
				got, err := geo.ClosestPair(pts, membersA, membersB, strat)
				if err != nil {
					t.Fatalf("%s/%v: ClosestPair: %v", name, strat, err)
				}
				if got != want {
					t.Fatalf("%s/%v: ClosestPair=%v want %v", name, strat, got, want)
				}
			}
			// The skip closures drive the backup-border elections.
			idxB, err := geo.NewIndex(pts, membersB, geo.KDTree)
			if err != nil {
				t.Fatal(err)
			}
			skip := func(j int) bool { return j == want.A || j == want.B }
			var filteredA []int
			for _, a := range membersA {
				if !skip(a) {
					filteredA = append(filteredA, a)
				}
			}
			var filteredB []int
			for _, b := range membersB {
				if !skip(b) {
					filteredB = append(filteredB, b)
				}
			}
			want2, ok2 := refClosestPair(pts, filteredA, filteredB)
			got2, gotOK2 := geo.ClosestPairIndexed(pts, membersA, idxB, skip, skip)
			if gotOK2 != ok2 || (ok2 && got2 != want2) {
				t.Fatalf("%s: skipped ClosestPairIndexed=%v,%v want %v,%v", name, got2, gotOK2, want2, ok2)
			}
		}
	}
}

func TestMSTStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// n above the internal Borůvka cutover so the indexed path engages.
	for _, n := range []int{65, 120, 300} {
		for name, pts := range pointSets(rng, n, 2) {
			want, err := geo.MST(pts, geo.Brute)
			if err != nil {
				t.Fatalf("%s: brute MST: %v", name, err)
			}
			got, err := geo.MST(pts, geo.KDTree)
			if err != nil {
				t.Fatalf("%s: kd MST: %v", name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s n=%d: kd MST differs from brute\n got %v\nwant %v", name, n, got, want)
			}
			if len(got) != n-1 {
				t.Fatalf("%s: MST has %d edges, want %d", name, len(got), n-1)
			}
		}
	}
}

func TestNewIndexValidation(t *testing.T) {
	pts := []coords.Point{{0, 0}, {1, 1}, {2, 2}}
	cases := []struct {
		name    string
		pts     []coords.Point
		members []int
	}{
		{"empty points", nil, nil},
		{"empty members", pts, []int{}},
		{"member out of range", pts, []int{0, 3}},
		{"negative member", pts, []int{-1, 0}},
		{"duplicate member", pts, []int{1, 1}},
		{"dimension mismatch", []coords.Point{{0, 0}, {1}}, nil},
		{"non-finite", []coords.Point{{0, 0}, {math.NaN(), 1}}, nil},
		{"zero-dimensional", []coords.Point{{}}, nil},
	}
	for _, tc := range cases {
		for _, strat := range allStrategies {
			if _, err := geo.NewIndex(tc.pts, tc.members, strat); err == nil {
				t.Errorf("%s/%v: expected error", tc.name, strat)
			}
		}
	}
	if !geo.Finite([]coords.Point{{1, 2}, {3, 4}}) {
		t.Error("Finite rejected finite points")
	}
	if geo.Finite([]coords.Point{{1, math.Inf(1)}}) {
		t.Error("Finite accepted +Inf")
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[geo.Strategy]string{
		geo.Auto: "auto", geo.Brute: "brute", geo.KDTree: "kdtree", geo.Grid: "grid",
	} {
		if got := s.String(); got != want {
			t.Errorf("Strategy(%d).String()=%q want %q", int(s), got, want)
		}
	}
}
