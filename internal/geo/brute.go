package geo

import (
	"math"

	"hfc/internal/coords"
)

// bruteIndex is the linear-scan reference implementation: the canonical
// semantics every accelerated strategy must reproduce exactly.
type bruteIndex struct {
	pts     []coords.Point
	members []int // ascending
}

func (b *bruteIndex) Size() int { return len(b.members) }

func (b *bruteIndex) Nearest(q coords.Point, skip func(int) bool) (Neighbor, bool) {
	best := Neighbor{Idx: -1, Dist: math.Inf(1)}
	for _, j := range b.members {
		if skip != nil && skip(j) {
			continue
		}
		if d := coords.Dist(q, b.pts[j]); neighborLess(d, j, best.Dist, best.Idx) {
			best = Neighbor{Idx: j, Dist: d}
		}
	}
	return best, best.Idx >= 0
}

func (b *bruteIndex) NearestBounded(q coords.Point, bound float64, skip func(int) bool) (Neighbor, bool) {
	return b.Nearest(q, skip) // the scan is already exact for any bound
}

func (b *bruteIndex) KNN(q coords.Point, k int, skip func(int) bool) []Neighbor {
	if k <= 0 {
		return nil
	}
	acc := &knnAcc{k: k}
	for _, j := range b.members {
		if skip != nil && skip(j) {
			continue
		}
		acc.consider(j, coords.Dist(q, b.pts[j]))
	}
	return acc.out
}

func (b *bruteIndex) RangeSearch(q coords.Point, r float64) []int {
	if r < 0 {
		return nil
	}
	var out []int
	for _, j := range b.members {
		if coords.Dist(q, b.pts[j]) <= r {
			out = append(out, j)
		}
	}
	return out
}
