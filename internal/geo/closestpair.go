package geo

import (
	"errors"
	"math"

	"hfc/internal/coords"
)

// Pair is a bichromatic closest pair: A is a member of the iterated side,
// B a member of the indexed side, Dist their computed distance.
type Pair struct {
	A, B int
	Dist float64
}

// pairLess reports whether candidate (d1, a1, b1) precedes (d2, a2, b2) in
// the canonical pair order — the exact tie rule the §3.3 brute-force
// election uses.
func pairLess(d1 float64, a1, b1 int, d2 float64, a2, b2 int) bool {
	//hfcvet:ignore floatdist exact distance ties fall back to the index tuple so elections stay deterministic
	if d1 != d2 {
		return d1 < d2
	}
	if a1 != a2 {
		return a1 < a2
	}
	return b1 < b2
}

// ClosestPairIndexed returns the pair minimizing (Dist, A, B) between the
// listed A members (minus skipA) and the indexed B side (minus skipB). The
// incumbent distance is threaded into every nearest-neighbour query as its
// bound, so once a close pair is found the remaining queries prune almost
// everything. ok is false when either side is effectively empty.
func ClosestPairIndexed(pts []coords.Point, membersA []int, b Index, skipA, skipB func(int) bool) (Pair, bool) {
	best := Pair{A: -1, B: -1, Dist: math.Inf(1)}
	for _, a := range membersA {
		if skipA != nil && skipA(a) {
			continue
		}
		nb, ok := b.NearestBounded(pts[a], best.Dist, skipB)
		if !ok {
			continue
		}
		if pairLess(nb.Dist, a, nb.Idx, best.Dist, best.A, best.B) {
			best = Pair{A: a, B: nb.Idx, Dist: nb.Dist}
		}
	}
	return best, best.A >= 0
}

// ClosestPair builds an index over membersB with the given strategy and
// returns the bichromatic closest pair against membersA. It is the
// one-shot convenience form of ClosestPairIndexed.
func ClosestPair(pts []coords.Point, membersA, membersB []int, strat Strategy) (Pair, error) {
	if len(membersA) == 0 || len(membersB) == 0 {
		return Pair{}, errors.New("geo: closest pair over an empty side")
	}
	idx, err := NewIndex(pts, membersB, strat)
	if err != nil {
		return Pair{}, err
	}
	p, ok := ClosestPairIndexed(pts, membersA, idx, nil, nil)
	if !ok {
		return Pair{}, errors.New("geo: closest pair over an empty side")
	}
	return p, nil
}
