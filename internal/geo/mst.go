package geo

import (
	"errors"
	"fmt"
	"math"

	"hfc/internal/coords"
	"hfc/internal/graph"
)

// mstBruteCutover is the point count below which MST falls back to the
// dense Prim scan regardless of strategy: at small n the O(n²) scan beats
// tree construction.
const mstBruteCutover = 64

// MST computes the Euclidean minimum spanning tree of pts in canonical
// form (each edge oriented From < To, edges sorted by (Weight, From, To)).
//
// Edge weights carry exact distance ties, so the MST is made unique by
// ordering edges by the tuple (weight, min endpoint, max endpoint) — the
// same total order graph.EuclideanMST uses. Under a total order the MST is
// unique, so the Borůvka rounds the indexed strategies run return exactly
// the edge set of the dense Prim scan; the property tests assert the
// DeepEqual.
//
// Brute selects the dense Prim scan; every indexed strategy runs Borůvka
// rounds over a component-annotated k-d tree (the grid has no component
// annotation, so Grid also uses the tree here). Points must be finite and
// share one dimension.
func MST(pts []coords.Point, strat Strategy) ([]graph.Edge, error) {
	n := len(pts)
	if n == 0 {
		return nil, errors.New("geo: mst of empty point set")
	}
	dim := len(pts[0])
	if dim == 0 {
		return nil, errors.New("geo: zero-dimensional points")
	}
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("geo: point %d has dimension %d, want %d", i, len(p), dim)
		}
		if !finitePoint(p) {
			return nil, fmt.Errorf("geo: point %d has a non-finite coordinate", i)
		}
	}
	if strat == Brute || n < mstBruteCutover {
		mst, err := graph.EuclideanMST(n, func(i, j int) float64 { return coords.Dist(pts[i], pts[j]) })
		if err != nil {
			return nil, err
		}
		graph.CanonicalizeEdges(mst)
		return mst, nil
	}

	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	t := newKDTree(pts, members, dim)
	uf := graph.NewUnionFind(n)
	edges := make([]graph.Edge, 0, n-1)
	compOf := make([]int, n)
	nodeComp := make([]int, len(t.nodes))
	// Per-round candidate edge of each component, indexed by its root.
	bestW := make([]float64, n)
	bestLo := make([]int, n)
	bestHi := make([]int, n)
	roots := make([]int, 0, n)
	// Cross-round cache of each node's exact nearest foreign neighbour.
	// The foreign set of a node only shrinks as components merge, so a
	// cached exact minimum stays the exact canonical minimum as long as the
	// neighbour remains foreign — nodes deep inside a component skip their
	// queries for many consecutive rounds.
	cand := make([]Neighbor, n)
	candOK := make([]bool, n)
	// buddy[i] is a spatially close member (its neighbour in the tree's
	// leaf order). A query bounded by d(i, buddy) is still exact whenever
	// the buddy is foreign — the buddy itself is a candidate, so the true
	// minimum is within the bound — and it turns the unbounded first-round
	// queries into tightly pruned ones.
	buddy := make([]int, n)
	for p, i := range t.idxs {
		if p+1 < n {
			buddy[i] = t.idxs[p+1]
		} else {
			buddy[i] = t.idxs[p-1]
		}
	}

	for uf.Sets() > 1 {
		for i := range compOf {
			compOf[i] = uf.Find(i)
		}
		t.annotate(compOf, nodeComp)
		roots = roots[:0]
		// Each node supplies its nearest foreign point (cached or freshly
		// queried); candidates merge into the owning component's best
		// outgoing edge under the canonical (weight, lo, hi) order. The
		// component incumbent's weight bounds each query, so most
		// late-round queries prune to nothing.
		for i := range bestLo {
			bestLo[i] = -1
		}
		for i := 0; i < n; i++ {
			r := compOf[i]
			var nb Neighbor
			if candOK[i] && compOf[cand[i].Idx] != r {
				nb = cand[i]
			} else {
				bound := math.Inf(1)
				if bestLo[r] >= 0 {
					bound = bestW[r]
				}
				if b := buddy[i]; compOf[b] != r {
					if d := coords.Dist(pts[i], pts[b]); d < bound {
						bound = d
					}
				}
				got, ok := t.nearestForeign(pts[i], r, bound, compOf, nodeComp)
				// Only results within the bound are exact minima
				// (NearestBounded contract) — they are safe to cache and
				// the only ones that can win the merge below.
				if !ok || got.Dist > bound {
					candOK[i] = false
					continue
				}
				cand[i], candOK[i] = got, true
				nb = got
			}
			lo, hi := i, nb.Idx
			if lo > hi {
				lo, hi = hi, lo
			}
			if bestLo[r] < 0 {
				roots = append(roots, r)
				bestW[r], bestLo[r], bestHi[r] = nb.Dist, lo, hi
			} else if edgeTupleLess(nb.Dist, lo, hi, bestW[r], bestLo[r], bestHi[r]) {
				bestW[r], bestLo[r], bestHi[r] = nb.Dist, lo, hi
			}
		}
		merged := false
		for _, r := range roots {
			if bestLo[r] < 0 {
				continue
			}
			if uf.Union(bestLo[r], bestHi[r]) {
				edges = append(edges, graph.Edge{From: bestLo[r], To: bestHi[r], Weight: bestW[r]})
				merged = true
			}
		}
		if !merged {
			return nil, errors.New("geo: boruvka made no progress")
		}
	}
	graph.CanonicalizeEdges(edges)
	return edges, nil
}

// edgeTupleLess is the canonical edge order on (weight, lo, hi) tuples
// with lo < hi.
func edgeTupleLess(w1 float64, lo1, hi1 int, w2 float64, lo2, hi2 int) bool {
	//hfcvet:ignore floatdist equal-weight edges order by endpoint tuple, making the MST unique
	if w1 != w2 {
		return w1 < w2
	}
	if lo1 != lo2 {
		return lo1 < lo2
	}
	return hi1 < hi2
}
