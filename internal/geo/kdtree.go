package geo

import (
	"math"
	"sort"

	"hfc/internal/coords"
)

// kdLeafSize is the bucket size at which splitting stops; buckets this
// small are cheaper to scan than to traverse.
const kdLeafSize = 32

// kdNode is one node of the bucketed k-d tree. Every node (internal or
// leaf) stores its bounding box for pruning; leaves reference a range of
// the member permutation, internal nodes reference their children.
type kdNode struct {
	axis        int // split axis; -1 marks a leaf
	left, right int // child node indices (internal nodes)
	start, end  int // member range in idxs (leaves)
	min, max    []float64
}

// kdTree is a bucketed k-d tree over a member subset of a point slice.
// Immutable after construction; queries share no mutable state, so
// concurrent readers are safe.
type kdTree struct {
	pts   []coords.Point
	dim   int
	idxs  []int // member indices, permuted so every leaf owns a contiguous range
	nodes []kdNode
}

func newKDTree(pts []coords.Point, members []int, dim int) *kdTree {
	t := &kdTree{pts: pts, dim: dim, idxs: members}
	t.nodes = make([]kdNode, 0, 2*(len(members)/kdLeafSize+1))
	t.build(0, len(members))
	return t
}

// build creates the subtree over idxs[start:end) and returns its node
// index. Splits are on the widest bounding-box axis at the member median,
// ordered by (coordinate, index) so construction is deterministic.
func (t *kdTree) build(start, end int) int {
	lo := make([]float64, t.dim)
	hi := make([]float64, t.dim)
	copy(lo, t.pts[t.idxs[start]])
	copy(hi, t.pts[t.idxs[start]])
	for _, j := range t.idxs[start+1 : end] {
		p := t.pts[j]
		for a := 0; a < t.dim; a++ {
			if p[a] < lo[a] {
				lo[a] = p[a]
			}
			if p[a] > hi[a] {
				hi[a] = p[a]
			}
		}
	}
	id := len(t.nodes)
	t.nodes = append(t.nodes, kdNode{axis: -1, start: start, end: end, min: lo, max: hi})
	if end-start <= kdLeafSize {
		return id
	}
	axis, spread := 0, hi[0]-lo[0]
	for a := 1; a < t.dim; a++ {
		if s := hi[a] - lo[a]; s > spread {
			axis, spread = a, s
		}
	}
	if spread == 0 {
		return id // all members coincide; keep one flat bucket
	}
	seg := t.idxs[start:end]
	sort.Slice(seg, func(i, j int) bool {
		//hfcvet:ignore floatdist equal split coordinates order by member index for a deterministic tree shape
		if t.pts[seg[i]][axis] != t.pts[seg[j]][axis] {
			return t.pts[seg[i]][axis] < t.pts[seg[j]][axis]
		}
		return seg[i] < seg[j]
	})
	mid := (start + end) / 2
	left := t.build(start, mid)
	right := t.build(mid, end)
	nd := &t.nodes[id]
	nd.axis, nd.left, nd.right = axis, left, right
	return id
}

func (t *kdTree) Size() int { return len(t.idxs) }

func (t *kdTree) Nearest(q coords.Point, skip func(int) bool) (Neighbor, bool) {
	return t.NearestBounded(q, math.Inf(1), skip)
}

func (t *kdTree) NearestBounded(q coords.Point, bound float64, skip func(int) bool) (Neighbor, bool) {
	best := Neighbor{Idx: -1, Dist: math.Inf(1)}
	t.nearest(0, q, sqBound(bound), skip, &best)
	return best, best.Idx >= 0
}

// nearest descends the tree, nearer child first, pruning subtrees whose
// box lies beyond min(capSq, best²)·(1+pruneSlack).
func (t *kdTree) nearest(node int, q coords.Point, capSq float64, skip func(int) bool, best *Neighbor) {
	nd := &t.nodes[node]
	limit := capSq
	if bsq := sqBound(best.Dist); bsq < limit {
		limit = bsq
	}
	if boxBoundSq(q, nd.min, nd.max) > limit*(1+pruneSlack) {
		return
	}
	if nd.axis < 0 {
		for _, j := range t.idxs[nd.start:nd.end] {
			if skip != nil && skip(j) {
				continue
			}
			if sqDist(q, t.pts[j]) > limit*(1+pruneSlack) {
				continue
			}
			if d := coords.Dist(q, t.pts[j]); neighborLess(d, j, best.Dist, best.Idx) {
				*best = Neighbor{Idx: j, Dist: d}
				if bsq := sqBound(best.Dist); bsq < limit {
					limit = bsq
				}
			}
		}
		return
	}
	first, second := nd.left, nd.right
	if q[nd.axis] > t.nodes[nd.right].min[nd.axis] {
		first, second = second, first
	}
	t.nearest(first, q, capSq, skip, best)
	t.nearest(second, q, capSq, skip, best)
}

func (t *kdTree) KNN(q coords.Point, k int, skip func(int) bool) []Neighbor {
	if k <= 0 {
		return nil
	}
	acc := &knnAcc{k: k}
	t.knn(0, q, skip, acc)
	return acc.out
}

func (t *kdTree) knn(node int, q coords.Point, skip func(int) bool, acc *knnAcc) {
	nd := &t.nodes[node]
	if boxBoundSq(q, nd.min, nd.max) > acc.limitSq()*(1+pruneSlack) {
		return
	}
	if nd.axis < 0 {
		for _, j := range t.idxs[nd.start:nd.end] {
			if skip != nil && skip(j) {
				continue
			}
			if sqDist(q, t.pts[j]) > acc.limitSq()*(1+pruneSlack) {
				continue
			}
			acc.consider(j, coords.Dist(q, t.pts[j]))
		}
		return
	}
	first, second := nd.left, nd.right
	if q[nd.axis] > t.nodes[nd.right].min[nd.axis] {
		first, second = second, first
	}
	t.knn(first, q, skip, acc)
	t.knn(second, q, skip, acc)
}

func (t *kdTree) RangeSearch(q coords.Point, r float64) []int {
	if r < 0 {
		return nil
	}
	var out []int
	t.inRange(0, q, r, sqBound(r), &out)
	sort.Ints(out)
	return out
}

func (t *kdTree) inRange(node int, q coords.Point, r, rSq float64, out *[]int) {
	nd := &t.nodes[node]
	if boxBoundSq(q, nd.min, nd.max) > rSq*(1+pruneSlack) {
		return
	}
	if nd.axis < 0 {
		for _, j := range t.idxs[nd.start:nd.end] {
			if coords.Dist(q, t.pts[j]) <= r {
				*out = append(*out, j)
			}
		}
		return
	}
	t.inRange(nd.left, q, r, rSq, out)
	t.inRange(nd.right, q, r, rSq, out)
}

// annotate tags every node with the single Borůvka component all its
// members belong to (or -1 when mixed), writing into nodeComp, which must
// have len(t.nodes) entries. Pure-component subtrees are what lets
// nearestForeign skip same-component regions wholesale.
func (t *kdTree) annotate(compOf []int, nodeComp []int) {
	// Nodes are allocated parent-first, so walking the slice backwards
	// visits children before parents.
	for id := len(t.nodes) - 1; id >= 0; id-- {
		nd := &t.nodes[id]
		if nd.axis < 0 {
			c := compOf[t.idxs[nd.start]]
			for _, j := range t.idxs[nd.start+1 : nd.end] {
				if compOf[j] != c {
					c = -1
					break
				}
			}
			nodeComp[id] = c
			continue
		}
		if l, r := nodeComp[nd.left], nodeComp[nd.right]; l == r {
			nodeComp[id] = l
		} else {
			nodeComp[id] = -1
		}
	}
}

// nearestForeign returns the member minimizing (Dist, Idx) among members
// outside component qComp, with the NearestBounded bound contract. It is
// the Borůvka round query: subtrees annotated with qComp are skipped
// without descending.
func (t *kdTree) nearestForeign(q coords.Point, qComp int, bound float64, compOf, nodeComp []int) (Neighbor, bool) {
	best := Neighbor{Idx: -1, Dist: math.Inf(1)}
	t.foreign(0, q, qComp, sqBound(bound), compOf, nodeComp, &best)
	return best, best.Idx >= 0
}

func (t *kdTree) foreign(node int, q coords.Point, qComp int, capSq float64, compOf, nodeComp []int, best *Neighbor) {
	if nodeComp[node] == qComp {
		return
	}
	nd := &t.nodes[node]
	limit := capSq
	if bsq := sqBound(best.Dist); bsq < limit {
		limit = bsq
	}
	if boxBoundSq(q, nd.min, nd.max) > limit*(1+pruneSlack) {
		return
	}
	if nd.axis < 0 {
		for _, j := range t.idxs[nd.start:nd.end] {
			if compOf[j] == qComp {
				continue
			}
			if sqDist(q, t.pts[j]) > limit*(1+pruneSlack) {
				continue
			}
			if d := coords.Dist(q, t.pts[j]); neighborLess(d, j, best.Dist, best.Idx) {
				*best = Neighbor{Idx: j, Dist: d}
				if bsq := sqBound(best.Dist); bsq < limit {
					limit = bsq
				}
			}
		}
		return
	}
	first, second := nd.left, nd.right
	if q[nd.axis] > t.nodes[nd.right].min[nd.axis] {
		first, second = second, first
	}
	t.foreign(first, q, qComp, capSq, compOf, nodeComp, best)
	t.foreign(second, q, qComp, capSq, compOf, nodeComp, best)
}
