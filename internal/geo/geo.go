// Package geo is the spatial-index geometric engine behind the
// sub-quadratic construction paths: a k-d tree and a uniform-grid fallback
// over embedded GNP points (internal/coords) answering nearest-neighbour,
// k-NN, range, and bichromatic closest-pair queries, plus a Borůvka
// Euclidean-MST builder for Zahn's clustering (§3.2) and the §3.3 border
// elections.
//
// Every query is exact, not approximate: candidate distances are computed
// with coords.Dist — the same call the brute-force scans make — and
// subtree pruning keeps a relative slack (pruneSlack) so no candidate that
// could win under floating-point arithmetic is ever skipped. Exact distance
// ties break toward the lowest member index (and for pairs and edges, the
// lexicographically smallest index tuple), the same canonical order the
// brute-force scans use, so an indexed result is bit-identical to the
// corresponding O(n·m) scan. The equivalence is asserted by property tests
// and FuzzGeoIndex.
package geo

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hfc/internal/coords"
)

// Strategy selects the spatial-index implementation.
type Strategy int

const (
	// Auto picks the k-d tree for large member sets and the brute scan for
	// tiny ones (below autoBruteCutover, where tree traversal overhead
	// exceeds the scan).
	Auto Strategy = iota
	// Brute is the plain linear scan — the reference every other strategy
	// must match bit for bit.
	Brute
	// KDTree is a bucketed k-d tree with bounding-box pruning.
	KDTree
	// Grid is a uniform-grid fallback with ring search; it degrades more
	// gracefully than the k-d tree on heavily duplicated point sets.
	Grid
)

// String returns a short label for the strategy.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Brute:
		return "brute"
	case KDTree:
		return "kdtree"
	case Grid:
		return "grid"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// autoBruteCutover is the member count below which Auto selects the brute
// scan: tree construction plus traversal only pays off past a few dozen
// points.
const autoBruteCutover = 48

// pruneSlack is the relative slack applied to every squared pruning bound.
// Box bounds and candidate distances are computed with different
// floating-point operation orders, so a subtree is only discarded when its
// box is further than bound*(1+pruneSlack) — a margin many orders of
// magnitude above the few-ulp rounding noise, guaranteeing no candidate
// that could tie or win is pruned while still rejecting essentially every
// losing subtree.
const pruneSlack = 1e-9

// Neighbor is one query answer: a member index and its computed distance.
type Neighbor struct {
	Idx  int
	Dist float64
}

// Index answers exact proximity queries over a fixed member subset of a
// point set. Implementations are immutable after construction and safe for
// concurrent readers. Member indices are indices into the original point
// slice, not positions within the subset.
type Index interface {
	// Size returns the number of indexed members.
	Size() int
	// Nearest returns the member minimizing (Dist, Idx) among members for
	// which skip (when non-nil) returns false. ok is false when every
	// member is skipped.
	Nearest(q coords.Point, skip func(int) bool) (Neighbor, bool)
	// NearestBounded is Nearest restricted by an upper bound: whenever the
	// true minimum has Dist <= bound, exactly that minimum is returned.
	// When every candidate lies beyond the bound the result may be absent
	// or an arbitrary candidate — callers must treat it as "no
	// improvement". The bound lets closest-pair loops share their
	// incumbent across queries and skip almost all work.
	NearestBounded(q coords.Point, bound float64, skip func(int) bool) (Neighbor, bool)
	// KNN returns the k members minimizing (Dist, Idx), ascending in that
	// order (fewer when the index has fewer eligible members).
	KNN(q coords.Point, k int, skip func(int) bool) []Neighbor
	// RangeSearch returns the member indices within distance r of q
	// (inclusive), ascending.
	RangeSearch(q coords.Point, r float64) []int
}

// NewIndex builds an index over pts restricted to the given members (nil
// means every point). The member list is copied; pts is referenced, not
// copied, and must not be mutated while the index is in use. All member
// points must share one dimension and be finite.
func NewIndex(pts []coords.Point, members []int, strat Strategy) (Index, error) {
	if len(pts) == 0 {
		return nil, errors.New("geo: empty point set")
	}
	if members == nil {
		members = make([]int, len(pts))
		for i := range members {
			members[i] = i
		}
	} else {
		members = append([]int(nil), members...)
		sort.Ints(members)
	}
	if len(members) == 0 {
		return nil, errors.New("geo: empty member set")
	}
	for i, m := range members {
		if m < 0 || m >= len(pts) {
			return nil, fmt.Errorf("geo: member %d out of range [0,%d)", m, len(pts))
		}
		if i > 0 && members[i-1] == m {
			return nil, fmt.Errorf("geo: duplicate member %d", m)
		}
	}
	dim := len(pts[members[0]])
	if dim == 0 {
		return nil, errors.New("geo: zero-dimensional points")
	}
	for _, m := range members {
		if len(pts[m]) != dim {
			return nil, fmt.Errorf("geo: point %d has dimension %d, want %d", m, len(pts[m]), dim)
		}
		if !finitePoint(pts[m]) {
			return nil, fmt.Errorf("geo: point %d has a non-finite coordinate", m)
		}
	}
	switch strat {
	case Brute:
		return &bruteIndex{pts: pts, members: members}, nil
	case KDTree:
		return newKDTree(pts, members, dim), nil
	case Grid:
		return newGridIndex(pts, members, dim), nil
	case Auto:
		if len(members) < autoBruteCutover {
			return &bruteIndex{pts: pts, members: members}, nil
		}
		return newKDTree(pts, members, dim), nil
	default:
		return nil, fmt.Errorf("geo: unknown strategy %d", int(strat))
	}
}

// Finite reports whether every coordinate of every point is finite — the
// precondition for enabling an indexed strategy (NaN breaks any ordering
// argument, so callers fall back to the brute scans on non-finite input).
func Finite(pts []coords.Point) bool {
	for _, p := range pts {
		if !finitePoint(p) {
			return false
		}
	}
	return true
}

func finitePoint(p coords.Point) bool {
	for _, x := range p {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// neighborLess reports whether candidate (d1, i1) precedes (d2, i2) in the
// canonical result order.
func neighborLess(d1 float64, i1 int, d2 float64, i2 int) bool {
	//hfcvet:ignore floatdist exact distance ties fall back to member index so every engine agrees bit for bit
	if d1 != d2 {
		return d1 < d2
	}
	return i1 < i2
}

// sqDist is the squared Euclidean distance — the leaf-scan prefilter.
// Candidates are only rejected on sqDist when they exceed the squared
// limit by more than pruneSlack; survivors are re-measured with
// coords.Dist, so every comparison that decides a result still happens on
// the exact same values the brute scans use.
func sqDist(a, b coords.Point) float64 {
	s := 0.0
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return s
}

// boxBoundSq returns a lower bound on the squared distance from q to the
// axis-aligned box [min, max].
func boxBoundSq(q coords.Point, min, max []float64) float64 {
	sum := 0.0
	for a := range q {
		if d := min[a] - q[a]; d > 0 {
			sum += d * d
		} else if d := q[a] - max[a]; d > 0 {
			sum += d * d
		}
	}
	return sum
}

// sqBound converts a distance bound to the squared domain (+Inf maps to
// +Inf).
func sqBound(bound float64) float64 {
	if math.IsInf(bound, 1) {
		return bound
	}
	return bound * bound
}

// knnAcc accumulates the k canonical-smallest neighbours, kept sorted by
// (Dist, Idx).
type knnAcc struct {
	k   int
	out []Neighbor
}

// consider offers a candidate to the accumulator.
func (acc *knnAcc) consider(j int, d float64) {
	if len(acc.out) == acc.k {
		worst := acc.out[len(acc.out)-1]
		if !neighborLess(d, j, worst.Dist, worst.Idx) {
			return
		}
		acc.out = acc.out[:len(acc.out)-1]
	}
	pos := sort.Search(len(acc.out), func(i int) bool {
		return neighborLess(d, j, acc.out[i].Dist, acc.out[i].Idx)
	})
	acc.out = append(acc.out, Neighbor{})
	copy(acc.out[pos+1:], acc.out[pos:])
	acc.out[pos] = Neighbor{Idx: j, Dist: d}
}

// limitSq returns the squared pruning limit: the k-th best distance once
// the accumulator is full, +Inf before that.
func (acc *knnAcc) limitSq() float64 {
	if len(acc.out) < acc.k {
		return math.Inf(1)
	}
	return sqBound(acc.out[len(acc.out)-1].Dist)
}
