package geo

import (
	"math"
	"sort"

	"hfc/internal/coords"
)

// maxCellsPerAxis caps the grid resolution so degenerate extents cannot
// explode the cell key space.
const maxCellsPerAxis = 1 << 10

// gridIndex is a uniform grid over a member subset: cells hold member
// lists (ascending), and queries ring-search outward from the query cell.
// It answers every query with the same canonical (Dist, Idx) order as the
// brute scan. Immutable after construction; safe for concurrent readers.
type gridIndex struct {
	pts      []coords.Point
	dim      int
	members  []int // ascending
	min      []float64
	cellSize []float64
	cellsPer []int
	stride   []int
	cells    map[int][]int
	// minSide is the smallest cell side among axes with more than one
	// cell; rings further than (ρ-1)·minSide from the query cell cannot
	// beat a bound below that, which terminates the outward search.
	minSide float64
	// maxOffset bounds the ring radius: past it every cell is out of the
	// grid on all axes.
	maxOffset int
}

func newGridIndex(pts []coords.Point, members []int, dim int) *gridIndex {
	g := &gridIndex{pts: pts, dim: dim, members: members}
	g.min = make([]float64, dim)
	max := make([]float64, dim)
	copy(g.min, pts[members[0]])
	copy(max, pts[members[0]])
	for _, j := range members[1:] {
		p := pts[j]
		for a := 0; a < dim; a++ {
			if p[a] < g.min[a] {
				g.min[a] = p[a]
			}
			if p[a] > max[a] {
				max[a] = p[a]
			}
		}
	}
	// Aim for ~1 member per cell: n^(1/dim) cells per axis.
	per := int(math.Ceil(math.Pow(float64(len(members)), 1/float64(dim))))
	if per < 1 {
		per = 1
	}
	if per > maxCellsPerAxis {
		per = maxCellsPerAxis
	}
	g.cellsPer = make([]int, dim)
	g.cellSize = make([]float64, dim)
	g.stride = make([]int, dim)
	g.minSide = math.Inf(1)
	stride := 1
	for a := 0; a < dim; a++ {
		extent := max[a] - g.min[a]
		if extent > 0 {
			g.cellsPer[a] = per
			g.cellSize[a] = extent / float64(per)
			if g.cellSize[a] < g.minSide {
				g.minSide = g.cellSize[a]
			}
		} else {
			g.cellsPer[a] = 1
			g.cellSize[a] = 1
		}
		g.stride[a] = stride
		stride *= g.cellsPer[a]
		if g.cellsPer[a]-1 > g.maxOffset {
			g.maxOffset = g.cellsPer[a] - 1
		}
	}
	g.cells = make(map[int][]int)
	for _, j := range members { // ascending members keep cell lists sorted
		key := g.key(g.cellOf(pts[j]))
		g.cells[key] = append(g.cells[key], j)
	}
	return g
}

// clampCell clamps a raw cell coordinate into [0, per).
func clampCell(v, per int) int {
	if v < 0 {
		return 0
	}
	if v >= per {
		return per - 1
	}
	return v
}

// cellOf returns the (clamped) integer cell coordinates of a point.
func (g *gridIndex) cellOf(p coords.Point) []int {
	c := make([]int, g.dim)
	for a := 0; a < g.dim; a++ {
		v := int(math.Floor((p[a] - g.min[a]) / g.cellSize[a]))
		if v < 0 {
			v = 0
		}
		if v >= g.cellsPer[a] {
			v = g.cellsPer[a] - 1
		}
		c[a] = v
	}
	return c
}

func (g *gridIndex) key(c []int) int {
	k := 0
	for a, v := range c {
		k += v * g.stride[a]
	}
	return k
}

// cellBoundSq lower-bounds the squared distance from q to cell c's box.
func (g *gridIndex) cellBoundSq(q coords.Point, c []int) float64 {
	sum := 0.0
	for a := 0; a < g.dim; a++ {
		lo := g.min[a] + float64(c[a])*g.cellSize[a]
		hi := lo + g.cellSize[a]
		if d := lo - q[a]; d > 0 {
			sum += d * d
		} else if d := q[a] - hi; d > 0 {
			sum += d * d
		}
	}
	return sum
}

// forRing visits every in-grid cell at Chebyshev distance ring from center
// in deterministic odometer order.
func (g *gridIndex) forRing(center []int, ring int, visit func(c []int)) {
	c := make([]int, g.dim)
	var walk func(axis int, onShell bool)
	walk = func(axis int, onShell bool) {
		if axis == g.dim {
			if onShell {
				visit(c)
			}
			return
		}
		for off := -ring; off <= ring; off++ {
			v := center[axis] + off
			if v < 0 || v >= g.cellsPer[axis] {
				continue
			}
			c[axis] = v
			walk(axis+1, onShell || off == -ring || off == ring)
		}
	}
	walk(0, ring == 0)
}

func (g *gridIndex) Size() int { return len(g.members) }

func (g *gridIndex) Nearest(q coords.Point, skip func(int) bool) (Neighbor, bool) {
	return g.NearestBounded(q, math.Inf(1), skip)
}

func (g *gridIndex) NearestBounded(q coords.Point, bound float64, skip func(int) bool) (Neighbor, bool) {
	capSq := sqBound(bound)
	best := Neighbor{Idx: -1, Dist: math.Inf(1)}
	center := g.cellOf(q)
	for ring := 0; ring <= g.maxOffset; ring++ {
		limit := capSq
		if bsq := sqBound(best.Dist); bsq < limit {
			limit = bsq
		}
		// Any cell at Chebyshev distance ring is at least (ring-1) whole
		// cells away along some axis.
		if ring > 0 {
			lb := float64(ring-1) * g.minSide
			if lb*lb > limit*(1+pruneSlack) {
				break
			}
		}
		g.forRing(center, ring, func(c []int) {
			limit := capSq
			if bsq := sqBound(best.Dist); bsq < limit {
				limit = bsq
			}
			if g.cellBoundSq(q, c) > limit*(1+pruneSlack) {
				return
			}
			for _, j := range g.cells[g.key(c)] {
				if skip != nil && skip(j) {
					continue
				}
				if d := coords.Dist(q, g.pts[j]); neighborLess(d, j, best.Dist, best.Idx) {
					best = Neighbor{Idx: j, Dist: d}
				}
			}
		})
	}
	return best, best.Idx >= 0
}

func (g *gridIndex) KNN(q coords.Point, k int, skip func(int) bool) []Neighbor {
	if k <= 0 {
		return nil
	}
	acc := &knnAcc{k: k}
	center := g.cellOf(q)
	for ring := 0; ring <= g.maxOffset; ring++ {
		if ring > 0 {
			lb := float64(ring-1) * g.minSide
			if lb*lb > acc.limitSq()*(1+pruneSlack) {
				break
			}
		}
		g.forRing(center, ring, func(c []int) {
			if g.cellBoundSq(q, c) > acc.limitSq()*(1+pruneSlack) {
				return
			}
			for _, j := range g.cells[g.key(c)] {
				if skip != nil && skip(j) {
					continue
				}
				acc.consider(j, coords.Dist(q, g.pts[j]))
			}
		})
	}
	return acc.out
}

func (g *gridIndex) RangeSearch(q coords.Point, r float64) []int {
	if r < 0 {
		return nil
	}
	rSq := sqBound(r)
	var out []int
	c := make([]int, g.dim)
	lo := make([]int, g.dim)
	hi := make([]int, g.dim)
	for a := 0; a < g.dim; a++ {
		// Clamp both ends into the valid cell range: members beyond the
		// nominal grid edges live in the boundary cells (cellOf clamps), so
		// a query box outside the grid must still scan them — the exact
		// distance filter below rejects any false candidates.
		lo[a] = clampCell(int(math.Floor((q[a]-r-g.min[a])/g.cellSize[a])), g.cellsPer[a])
		hi[a] = clampCell(int(math.Floor((q[a]+r-g.min[a])/g.cellSize[a])), g.cellsPer[a])
	}
	var walk func(axis int)
	walk = func(axis int) {
		if axis == g.dim {
			if g.cellBoundSq(q, c) > rSq*(1+pruneSlack) {
				return
			}
			for _, j := range g.cells[g.key(c)] {
				if coords.Dist(q, g.pts[j]) <= r {
					out = append(out, j)
				}
			}
			return
		}
		for v := lo[axis]; v <= hi[axis]; v++ {
			c[axis] = v
			walk(axis + 1)
		}
	}
	walk(0)
	sort.Ints(out)
	return out
}
