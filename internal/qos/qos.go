// Package qos implements the paper's §7 future-work extension: embedding
// QoS — network bandwidth and machine load — into the hierarchical service
// topology, with an explicit aggregation scheme for the hierarchical tier.
//
// Model:
//
//   - every proxy has a machine load in [0, 1); a service instance is
//     usable only on proxies whose load is at or below the request's
//     MaxLoad;
//   - every overlay hop (u, v) has an available bandwidth — the bottleneck
//     capacity of the physical route between the two proxies; a service
//     path is feasible only if every hop offers at least MinBandwidth.
//
// Flat QoS routing prunes the service DAG by both constraints and returns
// the delay-optimal feasible path (FindPath). Hierarchical QoS routing
// aggregates per cluster — the best (minimum) load per service and a
// pessimistic intra-cluster bandwidth floor — plus the measured bandwidth
// of each external border link, and feeds those aggregates into the §5
// cluster-level search through the routing package's admissibility hooks;
// child requests are then solved exactly under the true constraints
// (Router). Aggregation is conservative: a hierarchical route is never
// infeasible in reality, but some feasible requests may be falsely blocked
// — the precision/state tradeoff the paper's §7 anticipates, measured by
// the qos experiment.
package qos

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hfc/internal/routing"
	"hfc/internal/svc"
)

// BandwidthFunc reports the available bandwidth between two overlay nodes
// (Mbps). Implementations must be symmetric.
type BandwidthFunc func(u, v int) (float64, error)

// Profile is the QoS ground truth of an overlay.
type Profile struct {
	// Load[i] is overlay node i's machine load in [0, 1).
	Load []float64
	// Bandwidth is the overlay-hop bandwidth oracle.
	Bandwidth BandwidthFunc
}

// Validate checks structural sanity against an overlay of n nodes.
func (p *Profile) Validate(n int) error {
	if p == nil {
		return errors.New("qos: nil profile")
	}
	if len(p.Load) != n {
		return fmt.Errorf("qos: %d loads for %d nodes", len(p.Load), n)
	}
	for i, l := range p.Load {
		if l < 0 || l >= 1 || math.IsNaN(l) {
			return fmt.Errorf("qos: node %d load %v outside [0,1)", i, l)
		}
	}
	if p.Bandwidth == nil {
		return errors.New("qos: nil bandwidth oracle")
	}
	return nil
}

// RandomLoads draws n independent loads uniform in [lo, hi).
func RandomLoads(rng *rand.Rand, n int, lo, hi float64) ([]float64, error) {
	if rng == nil {
		return nil, errors.New("qos: nil rng")
	}
	if n < 1 {
		return nil, fmt.Errorf("qos: node count %d must be >= 1", n)
	}
	if lo < 0 || hi <= lo || hi > 1 {
		return nil, fmt.Errorf("qos: load range [%v,%v) outside [0,1)", lo, hi)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out, nil
}

// Constraints are a request's QoS requirements.
type Constraints struct {
	// MinBandwidth is the bandwidth every overlay hop must offer (Mbps);
	// zero disables the constraint.
	MinBandwidth float64
	// MaxLoad is the highest machine load a providing proxy may have; the
	// zero value is interpreted as "no constraint" (1.0).
	MaxLoad float64
}

func (c Constraints) maxLoad() float64 {
	if c.MaxLoad == 0 {
		return 1
	}
	return c.MaxLoad
}

func (c Constraints) validate() error {
	if c.MinBandwidth < 0 {
		return fmt.Errorf("qos: negative bandwidth constraint %v", c.MinBandwidth)
	}
	if c.MaxLoad < 0 || c.MaxLoad > 1 {
		return fmt.Errorf("qos: load constraint %v outside [0,1]", c.MaxLoad)
	}
	return nil
}

// FindPath computes the delay-optimal service path satisfying the
// constraints under full global QoS state — the flat baseline. providers
// and oracle are the same inputs as routing.FindPath; load-violating
// providers and bandwidth-violating hops are pruned before the search.
func FindPath(req svc.Request, providers routing.ProviderFunc, oracle routing.Oracle, prof *Profile, cons Constraints, exp routing.Expander) (*routing.Path, error) {
	if err := cons.validate(); err != nil {
		return nil, err
	}
	if providers == nil {
		return nil, errors.New("qos: nil provider function")
	}
	if prof == nil {
		return nil, errors.New("qos: nil profile")
	}
	filteredProviders := func(s svc.Service) []int {
		var out []int
		for _, p := range providers(s) {
			if p < len(prof.Load) && prof.Load[p] <= cons.maxLoad() {
				out = append(out, p)
			}
		}
		return out
	}
	var filter routing.EdgeFilter
	var bwErr error
	if cons.MinBandwidth > 0 {
		// The constraint applies to every hop of the CONCRETE path, so when
		// the topology expands a logical hop through relays (mesh chains,
		// HFC border pairs) each expanded segment must clear the bound.
		segmentsOK := func(u, v int) (bool, error) {
			seq := []int{u, v}
			if exp != nil {
				expanded, err := exp.Expand(u, v)
				if err != nil {
					return false, err
				}
				seq = expanded
			}
			for i := 0; i+1 < len(seq); i++ {
				if seq[i] == seq[i+1] {
					continue
				}
				bw, err := prof.Bandwidth(seq[i], seq[i+1])
				if err != nil {
					return false, err
				}
				if bw < cons.MinBandwidth {
					return false, nil
				}
			}
			return true, nil
		}
		filter = func(u, v int) bool {
			ok, err := segmentsOK(u, v)
			if err != nil {
				bwErr = err
				return false
			}
			return ok
		}
	}
	path, err := routing.FindPathFiltered(req, filteredProviders, oracle, exp, filter)
	if bwErr != nil {
		return nil, fmt.Errorf("qos: bandwidth oracle: %w", bwErr)
	}
	return path, err
}

// VerifyPath checks a concrete path against the profile and constraints:
// every providing proxy within the load bound, every hop within the
// bandwidth bound. Used by tests and by callers that admit traffic.
func VerifyPath(p *routing.Path, prof *Profile, cons Constraints) error {
	if p == nil {
		return errors.New("qos: nil path")
	}
	for _, h := range p.Hops {
		if h.Service != "" && prof.Load[h.Node] > cons.maxLoad() {
			return fmt.Errorf("qos: provider %d load %v exceeds %v", h.Node, prof.Load[h.Node], cons.maxLoad())
		}
	}
	if cons.MinBandwidth > 0 {
		for i := 0; i+1 < len(p.Hops); i++ {
			u, v := p.Hops[i].Node, p.Hops[i+1].Node
			if u == v {
				continue
			}
			bw, err := prof.Bandwidth(u, v)
			if err != nil {
				return fmt.Errorf("qos: bandwidth oracle: %w", err)
			}
			if bw < cons.MinBandwidth {
				return fmt.Errorf("qos: hop (%d,%d) bandwidth %v below %v", u, v, bw, cons.MinBandwidth)
			}
		}
	}
	return nil
}
