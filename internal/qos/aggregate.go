package qos

import (
	"errors"
	"fmt"
	"math"

	"hfc/internal/hfc"
	"hfc/internal/svc"
)

// ClusterQoS is the aggregated QoS state one cluster advertises — the §7
// answer to "how should QoS be aggregated into meaningful routing state".
// It is O(#services + 1) per cluster, preserving the framework's state
// scalability.
type ClusterQoS struct {
	// MinLoadPerService maps each service available in the cluster to the
	// load of its least-loaded provider: an optimistic bound — if even
	// this exceeds the request's MaxLoad, no provider in the cluster can
	// serve it.
	MinLoadPerService map[svc.Service]float64
	// BandwidthFloor is the minimum available bandwidth over all
	// intra-cluster node pairs: a pessimistic bound — any intra-cluster
	// segment is guaranteed at least this much.
	BandwidthFloor float64
	// BandwidthCeiling is the maximum over intra-cluster pairs: an
	// optimistic bound — no intra-cluster segment can offer more. The
	// floor/ceiling pair is the classical topology-aggregation interval
	// (cf. the paper's [9][13] QoS-aggregation citations).
	BandwidthCeiling float64
}

// Aggregates is the full aggregated QoS state of the system, computed once
// per state round (in a deployment, border proxies would piggyback these
// values on their §4 aggregate-state messages).
type Aggregates struct {
	// Clusters holds per-cluster aggregates, indexed by cluster ID.
	Clusters []ClusterQoS
	// ExternalBandwidth maps the normalized cluster pair {lo, hi} to the
	// measured bandwidth of its border link.
	ExternalBandwidth map[[2]int]float64
}

// Aggregate computes the advertised QoS state for every cluster of an HFC
// topology from the ground-truth profile and per-proxy capabilities.
func Aggregate(topo *hfc.Topology, caps []svc.CapabilitySet, prof *Profile) (*Aggregates, error) {
	if topo == nil {
		return nil, errors.New("qos: nil topology")
	}
	if len(caps) != topo.N() {
		return nil, fmt.Errorf("qos: %d capability sets for %d nodes", len(caps), topo.N())
	}
	if err := prof.Validate(topo.N()); err != nil {
		return nil, err
	}
	k := topo.NumClusters()
	agg := &Aggregates{
		Clusters:          make([]ClusterQoS, k),
		ExternalBandwidth: make(map[[2]int]float64),
	}
	for c := 0; c < k; c++ {
		members := topo.Members(c)
		cq := ClusterQoS{
			MinLoadPerService: make(map[svc.Service]float64),
			BandwidthFloor:    math.Inf(1),
			BandwidthCeiling:  math.Inf(1),
		}
		for _, m := range members {
			for s := range caps[m] {
				if best, ok := cq.MinLoadPerService[s]; !ok || prof.Load[m] < best {
					cq.MinLoadPerService[s] = prof.Load[m]
				}
			}
		}
		if len(members) > 1 {
			cq.BandwidthCeiling = 0
			for i, u := range members {
				for _, v := range members[i+1:] {
					bw, err := prof.Bandwidth(u, v)
					if err != nil {
						return nil, fmt.Errorf("qos: aggregating cluster %d: %w", c, err)
					}
					if bw < cq.BandwidthFloor {
						cq.BandwidthFloor = bw
					}
					if bw > cq.BandwidthCeiling {
						cq.BandwidthCeiling = bw
					}
				}
			}
		}
		agg.Clusters[c] = cq
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			u, v, err := topo.Border(a, b)
			if err != nil {
				return nil, err
			}
			bw, err := prof.Bandwidth(u, v)
			if err != nil {
				return nil, fmt.Errorf("qos: measuring external link (%d,%d): %w", a, b, err)
			}
			agg.ExternalBandwidth[[2]int{a, b}] = bw
		}
	}
	return agg, nil
}

// Policy selects how aggregated bandwidth intervals gate cluster-level
// admission.
type Policy int

// Admission policies. Enums start at one so the zero value is invalid.
const (
	// PolicyOptimistic admits a cluster when its bandwidth CEILING meets
	// the demand: cluster-level admission may prove wrong, but the exact
	// intra-cluster solving at the conquer stage still enforces the true
	// constraints, so a request is never falsely satisfied — it fails at
	// the child instead. This is the default: far fewer false blocks at
	// the price of occasional wasted child computations.
	PolicyOptimistic Policy = iota + 1
	// PolicyPessimistic admits a cluster only when its bandwidth FLOOR
	// meets the demand: first-try success is guaranteed, but coarse
	// clusters with one thin internal pair block many feasible requests.
	PolicyPessimistic
)

// String returns a short label for the policy.
func (p Policy) String() string {
	switch p {
	case PolicyOptimistic:
		return "optimistic"
	case PolicyPessimistic:
		return "pessimistic"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ClusterAdmissible reports whether the aggregate state admits cluster c as
// a provider of service s under the constraints: the cluster's best
// provider meets the load bound, and the cluster's aggregated bandwidth
// interval meets the bandwidth bound per the policy.
func (a *Aggregates) ClusterAdmissible(topo *hfc.Topology, s svc.Service, c int, cons Constraints, policy Policy) bool {
	if c < 0 || c >= len(a.Clusters) {
		return false
	}
	cq := a.Clusters[c]
	best, ok := cq.MinLoadPerService[s]
	if !ok || best > cons.maxLoad() {
		return false
	}
	if cons.MinBandwidth > 0 && len(topo.Members(c)) > 1 {
		bound := cq.BandwidthCeiling
		if policy == PolicyPessimistic {
			bound = cq.BandwidthFloor
		}
		if bound < cons.MinBandwidth {
			return false
		}
	}
	return true
}

// CrossingAdmissible reports whether the external link between clusters a
// and b meets the bandwidth bound.
func (a *Aggregates) CrossingAdmissible(x, y int, cons Constraints) bool {
	if cons.MinBandwidth == 0 {
		return true
	}
	lo, hi := x, y
	if lo > hi {
		lo, hi = hi, lo
	}
	bw, ok := a.ExternalBandwidth[[2]int{lo, hi}]
	return ok && bw >= cons.MinBandwidth
}
