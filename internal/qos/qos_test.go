package qos

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/hfc"
	"hfc/internal/routing"
	"hfc/internal/state"
	"hfc/internal/svc"
)

func TestRandomLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	loads, err := RandomLoads(rng, 100, 0.1, 0.9)
	if err != nil {
		t.Fatalf("RandomLoads: %v", err)
	}
	for i, l := range loads {
		if l < 0.1 || l >= 0.9 {
			t.Errorf("load[%d] = %v outside [0.1,0.9)", i, l)
		}
	}
	if _, err := RandomLoads(nil, 5, 0, 0.5); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := RandomLoads(rng, 0, 0, 0.5); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := RandomLoads(rng, 5, 0.5, 0.2); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := RandomLoads(rng, 5, 0.5, 1.5); err == nil {
		t.Error("range beyond 1 accepted")
	}
}

func TestProfileValidate(t *testing.T) {
	bw := func(u, v int) (float64, error) { return 100, nil }
	good := &Profile{Load: []float64{0.1, 0.2}, Bandwidth: bw}
	if err := good.Validate(2); err != nil {
		t.Errorf("good profile rejected: %v", err)
	}
	var nilProf *Profile
	if err := nilProf.Validate(2); err == nil {
		t.Error("nil profile accepted")
	}
	if err := (&Profile{Load: []float64{0.1}, Bandwidth: bw}).Validate(2); err == nil {
		t.Error("short load vector accepted")
	}
	if err := (&Profile{Load: []float64{0.1, 1.0}, Bandwidth: bw}).Validate(2); err == nil {
		t.Error("load 1.0 accepted")
	}
	if err := (&Profile{Load: []float64{0.1, -0.2}, Bandwidth: bw}).Validate(2); err == nil {
		t.Error("negative load accepted")
	}
	if err := (&Profile{Load: []float64{0.1, 0.2}}).Validate(2); err == nil {
		t.Error("nil bandwidth accepted")
	}
}

func TestConstraintsValidation(t *testing.T) {
	if (Constraints{}).maxLoad() != 1 {
		t.Error("zero MaxLoad should mean no constraint")
	}
	if err := (Constraints{MinBandwidth: -1}).validate(); err == nil {
		t.Error("negative bandwidth accepted")
	}
	if err := (Constraints{MaxLoad: 1.5}).validate(); err == nil {
		t.Error("load > 1 accepted")
	}
}

// lineFixture: five proxies on a line; node i has load loads[i]; bandwidth
// between u and v is bws[u][v].
func lineProfile(loads []float64, bws [][]float64) *Profile {
	return &Profile{
		Load: loads,
		Bandwidth: func(u, v int) (float64, error) {
			return bws[u][v], nil
		},
	}
}

func symmetricBW(n int, def float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if i != j {
				out[i][j] = def
			}
		}
	}
	return out
}

func TestFindPathLoadPruning(t *testing.T) {
	// Two providers of x: node 1 (near, overloaded) and node 3 (far, ok).
	pts := []coords.Point{{0, 0}, {5, 0}, {10, 0}, {5, 8}}
	oracle := routing.OracleFunc(func(u, v int) float64 { return coords.Dist(pts[u], pts[v]) })
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet("x"),
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet("x"),
	}
	prof := lineProfile([]float64{0.1, 0.9, 0.1, 0.2}, symmetricBW(4, 1000))
	sg, err := svc.Linear("x")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	req := svc.Request{Source: 0, Dest: 2, SG: sg}

	// Unconstrained: overloaded node 1 wins on distance.
	p, err := FindPath(req, routing.CapabilityProviders(caps), oracle, prof, Constraints{}, nil)
	if err != nil {
		t.Fatalf("FindPath: %v", err)
	}
	if p.Hops[1].Node != 1 {
		t.Errorf("unconstrained path used node %d, want 1", p.Hops[1].Node)
	}

	// MaxLoad 0.5: node 1 pruned, node 3 chosen.
	p, err = FindPath(req, routing.CapabilityProviders(caps), oracle, prof, Constraints{MaxLoad: 0.5}, nil)
	if err != nil {
		t.Fatalf("FindPath constrained: %v", err)
	}
	if p.Hops[1].Node != 3 {
		t.Errorf("constrained path used node %d, want 3", p.Hops[1].Node)
	}
	if err := VerifyPath(p, prof, Constraints{MaxLoad: 0.5}); err != nil {
		t.Errorf("VerifyPath: %v", err)
	}

	// MaxLoad 0.05: nothing qualifies.
	if _, err := FindPath(req, routing.CapabilityProviders(caps), oracle, prof, Constraints{MaxLoad: 0.05}, nil); !errors.Is(err, routing.ErrNoProviders) {
		t.Errorf("err = %v, want ErrNoProviders", err)
	}
}

func TestFindPathBandwidthPruning(t *testing.T) {
	pts := []coords.Point{{0, 0}, {5, 0}, {10, 0}, {5, 8}}
	oracle := routing.OracleFunc(func(u, v int) float64 { return coords.Dist(pts[u], pts[v]) })
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet("x"),
		svc.NewCapabilitySet(),
		svc.NewCapabilitySet("x"),
	}
	bws := symmetricBW(4, 1000)
	// Starve the links touching node 1.
	for _, other := range []int{0, 2, 3} {
		bws[1][other] = 5
		bws[other][1] = 5
	}
	prof := lineProfile([]float64{0.1, 0.1, 0.1, 0.1}, bws)
	sg, err := svc.Linear("x")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	req := svc.Request{Source: 0, Dest: 2, SG: sg}
	p, err := FindPath(req, routing.CapabilityProviders(caps), oracle, prof, Constraints{MinBandwidth: 50}, nil)
	if err != nil {
		t.Fatalf("FindPath: %v", err)
	}
	if p.Hops[1].Node != 3 {
		t.Errorf("path used starved node %d, want 3", p.Hops[1].Node)
	}
	if err := VerifyPath(p, prof, Constraints{MinBandwidth: 50}); err != nil {
		t.Errorf("VerifyPath: %v", err)
	}
	// Demanding more than any link offers: infeasible.
	if _, err := FindPath(req, routing.CapabilityProviders(caps), oracle, prof, Constraints{MinBandwidth: 5000}, nil); !errors.Is(err, routing.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestFindPathValidation(t *testing.T) {
	prof := lineProfile([]float64{0.1}, symmetricBW(1, 10))
	sg, err := svc.Linear("x")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	req := svc.Request{Source: 0, Dest: 0, SG: sg}
	oracle := routing.OracleFunc(func(u, v int) float64 { return 0 })
	if _, err := FindPath(req, nil, oracle, prof, Constraints{}, nil); err == nil {
		t.Error("nil providers accepted")
	}
	if _, err := FindPath(req, routing.CapabilityProviders(nil), oracle, nil, Constraints{}, nil); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := FindPath(req, routing.CapabilityProviders(nil), oracle, prof, Constraints{MinBandwidth: -2}, nil); err == nil {
		t.Error("bad constraints accepted")
	}
}

// bruteForceQoS enumerates provider assignments under the constraints.
func bruteForceQoS(req svc.Request, provs routing.ProviderFunc, oracle routing.Oracle, prof *Profile, cons Constraints) float64 {
	services := req.SG.Services
	best := math.Inf(1)
	hopOK := func(u, v int) bool {
		if u == v || cons.MinBandwidth == 0 {
			return true
		}
		bw, err := prof.Bandwidth(u, v)
		return err == nil && bw >= cons.MinBandwidth
	}
	var rec func(idx, prev int, cost float64)
	rec = func(idx, prev int, cost float64) {
		if cost >= best {
			return
		}
		if idx == len(services) {
			if !hopOK(prev, req.Dest) {
				return
			}
			total := cost
			if prev != req.Dest {
				total += oracle.Dist(prev, req.Dest)
			}
			if total < best {
				best = total
			}
			return
		}
		for _, p := range provs(services[idx]) {
			if prof.Load[p] > cons.maxLoad() || !hopOK(prev, p) {
				continue
			}
			step := 0.0
			if p != prev {
				step = oracle.Dist(prev, p)
			}
			rec(idx+1, p, cost+step)
		}
	}
	rec(0, req.Source, 0)
	return best
}

func TestFindPathMatchesBruteForceProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(8)
		pts := make([]coords.Point, n)
		for i := range pts {
			pts[i] = coords.Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		oracle := routing.OracleFunc(func(u, v int) float64 { return coords.Dist(pts[u], pts[v]) })
		cat, err := svc.NewCatalog(4)
		if err != nil {
			return false
		}
		caps, err := svc.RandomCapabilities(rng, n, cat, 1, 3)
		if err != nil {
			return false
		}
		loads, err := RandomLoads(rng, n, 0, 0.99)
		if err != nil {
			return false
		}
		bws := symmetricBW(n, 0)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				bw := 10 + rng.Float64()*90
				bws[i][j] = bw
				bws[j][i] = bw
			}
		}
		prof := lineProfile(loads, bws)
		gen, err := svc.NewRequestGenerator(rng, caps, 2, 3)
		if err != nil {
			return true // random deployment too thin for the length range
		}
		req, err := gen.Next()
		if err != nil {
			return false
		}
		cons := Constraints{MaxLoad: 0.3 + rng.Float64()*0.7, MinBandwidth: rng.Float64() * 60}
		provs := routing.CapabilityProviders(caps)
		p, err := FindPath(req, provs, oracle, prof, cons, nil)
		want := bruteForceQoS(req, provs, oracle, prof, cons)
		if err != nil {
			// Both must agree the request is infeasible.
			return math.IsInf(want, 1)
		}
		if err := VerifyPath(p, prof, cons); err != nil {
			return false
		}
		return math.Abs(p.DecisionCost-want) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// hierFixture builds a 3-cluster manual topology with converged state and a
// controllable QoS profile.
func hierFixture(t *testing.T, loads []float64, bws [][]float64) (*hfc.Topology, []svc.CapabilitySet, []state.NodeState, *Profile) {
	t.Helper()
	pts := []coords.Point{
		{0, 0}, {4, 0}, {2, 3}, // cluster 0 (nodes 0-2); source side
		{100, 0}, {104, 0}, {102, 3}, // cluster 1 (nodes 3-5); middle
		{200, 0}, {204, 0}, {202, 3}, // cluster 2 (nodes 6-8); dest side
	}
	assignment := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	clusters := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}
	cmap, err := coords.NewMap(pts)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	topo, err := hfc.Build(cmap, &cluster.Result{Assignment: assignment, Clusters: clusters})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	caps := []svc.CapabilitySet{
		svc.NewCapabilitySet(),    // 0 source
		svc.NewCapabilitySet(),    // 1
		svc.NewCapabilitySet(),    // 2
		svc.NewCapabilitySet("a"), // 3
		svc.NewCapabilitySet("a"), // 4
		svc.NewCapabilitySet("b"), // 5
		svc.NewCapabilitySet("b"), // 6
		svc.NewCapabilitySet(),    // 7 dest
		svc.NewCapabilitySet(),    // 8
	}
	states, _, err := state.Distribute(topo, caps)
	if err != nil {
		t.Fatalf("Distribute: %v", err)
	}
	return topo, caps, states, lineProfile(loads, bws)
}

func uniformLoads(n int, l float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = l
	}
	return out
}

func TestAggregateContents(t *testing.T) {
	loads := uniformLoads(9, 0.2)
	loads[3] = 0.8 // the worse "a" provider in cluster 1
	loads[4] = 0.3 // the better one
	bws := symmetricBW(9, 500)
	bws[3][5], bws[5][3] = 40, 40 // a thin intra-cluster pair in cluster 1
	topo, caps, _, prof := hierFixture(t, loads, bws)
	agg, err := Aggregate(topo, caps, prof)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if got := agg.Clusters[1].MinLoadPerService["a"]; got != 0.3 {
		t.Errorf("cluster 1 min load for a = %v, want 0.3", got)
	}
	if got := agg.Clusters[1].BandwidthFloor; got != 40 {
		t.Errorf("cluster 1 bandwidth floor = %v, want 40", got)
	}
	if got := agg.Clusters[0].BandwidthFloor; got != 500 {
		t.Errorf("cluster 0 bandwidth floor = %v, want 500", got)
	}
	// External links all at 500.
	for pair, bw := range agg.ExternalBandwidth {
		if bw != 500 {
			t.Errorf("external link %v bandwidth = %v, want 500", pair, bw)
		}
	}
	// Admissibility: cluster 1 admits "a" at MaxLoad 0.5 (best is 0.3) but
	// not at 0.2.
	if !agg.ClusterAdmissible(topo, "a", 1, Constraints{MaxLoad: 0.5}, PolicyPessimistic) {
		t.Error("cluster 1 rejected for a at MaxLoad 0.5")
	}
	if agg.ClusterAdmissible(topo, "a", 1, Constraints{MaxLoad: 0.25}, PolicyPessimistic) {
		t.Error("cluster 1 admitted for a at MaxLoad 0.25")
	}
	// Bandwidth floor blocks cluster 1 above 40.
	if agg.ClusterAdmissible(topo, "a", 1, Constraints{MinBandwidth: 100}, PolicyPessimistic) {
		t.Error("cluster 1 admitted despite floor 40 < 100")
	}
	if !agg.ClusterAdmissible(topo, "a", 1, Constraints{MinBandwidth: 30}, PolicyPessimistic) {
		t.Error("cluster 1 rejected despite floor 40 >= 30")
	}
	// Unknown service.
	if agg.ClusterAdmissible(topo, "zzz", 1, Constraints{}, PolicyPessimistic) {
		t.Error("cluster admitted for unknown service")
	}
	if agg.ClusterAdmissible(topo, "a", 99, Constraints{}, PolicyPessimistic) {
		t.Error("out-of-range cluster admitted")
	}
	if !agg.CrossingAdmissible(0, 1, Constraints{MinBandwidth: 400}) {
		t.Error("crossing rejected at 400 <= 500")
	}
	if agg.CrossingAdmissible(0, 1, Constraints{MinBandwidth: 600}) {
		t.Error("crossing admitted at 600 > 500")
	}
}

func TestRouterSatisfiesConstraints(t *testing.T) {
	loads := uniformLoads(9, 0.2)
	loads[3] = 0.9 // push requests onto node 4 for service a
	bws := symmetricBW(9, 500)
	topo, caps, states, prof := hierFixture(t, loads, bws)
	r, err := NewRouter(topo, states, caps, prof)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	sg, err := svc.Linear("a", "b")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	req := svc.Request{Source: 0, Dest: 7, SG: sg}
	cons := Constraints{MaxLoad: 0.5, MinBandwidth: 100}
	p, err := r.Route(req, cons)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if err := p.Validate(req, caps); err != nil {
		t.Fatalf("path invalid: %v", err)
	}
	if err := VerifyPath(p, prof, cons); err != nil {
		t.Fatalf("constraints violated: %v", err)
	}
	// Node 3 (overloaded) must not serve a.
	for _, h := range p.Hops {
		if h.Service == "a" && h.Node == 3 {
			t.Error("overloaded node 3 chosen for a")
		}
	}
}

func TestRouterConservativeFalseBlocking(t *testing.T) {
	// Cluster 1's floor is dragged down by one thin pair (3,5), but the
	// actual path a→(4) never uses it. Flat QoS succeeds; hierarchical
	// blocks: the documented cost of pessimistic aggregation.
	loads := uniformLoads(9, 0.2)
	bws := symmetricBW(9, 500)
	bws[3][5], bws[5][3] = 10, 10
	topo, caps, states, prof := hierFixture(t, loads, bws)

	sg, err := svc.Linear("a")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	req := svc.Request{Source: 0, Dest: 7, SG: sg}
	cons := Constraints{MinBandwidth: 100}

	flat, err := FindPath(req, routing.CapabilityProviders(caps),
		routing.OracleFunc(routing.HFCMetric{T: topo}.Dist), prof, cons, routing.HFCMetric{T: topo})
	if err != nil {
		t.Fatalf("flat QoS route failed: %v", err)
	}
	if err := VerifyPath(flat, prof, cons); err != nil {
		t.Fatalf("flat path violates constraints: %v", err)
	}

	r, err := NewRouter(topo, states, caps, prof)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	r.Policy = PolicyPessimistic
	if _, err := r.Route(req, cons); err == nil {
		t.Error("pessimistic hierarchical route succeeded despite floor 10 < 100 (expected false blocking)")
	}

	// The optimistic policy admits the cluster (ceiling 500 >= 100) and the
	// exact child solving finds the real path avoiding the thin pair.
	opt, err := NewRouter(topo, states, caps, prof)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	p, err := opt.Route(req, cons)
	if err != nil {
		t.Fatalf("optimistic hierarchical route failed: %v", err)
	}
	if err := VerifyPath(p, prof, cons); err != nil {
		t.Fatalf("optimistic path violates constraints: %v", err)
	}
}

func TestRouterNeverFalseAdmitsProperty(t *testing.T) {
	// Whatever the random profile, a hierarchical success always satisfies
	// the true constraints — aggregation must never lie optimistically
	// about bandwidth floors or per-service loads.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		loads, err := RandomLoads(rng, 9, 0, 0.99)
		if err != nil {
			return false
		}
		bws := symmetricBW(9, 0)
		for i := 0; i < 9; i++ {
			for j := i + 1; j < 9; j++ {
				bw := 10 + rng.Float64()*490
				bws[i][j] = bw
				bws[j][i] = bw
			}
		}
		topo, caps, states, prof := hierFixture(t, loads, bws)
		r, err := NewRouter(topo, states, caps, prof)
		if err != nil {
			return false
		}
		if rng.Intn(2) == 0 {
			r.Policy = PolicyPessimistic
		}
		sg, err := svc.Linear("a", "b")
		if err != nil {
			return false
		}
		req := svc.Request{Source: 0, Dest: 7, SG: sg}
		cons := Constraints{MaxLoad: 0.2 + rng.Float64()*0.8, MinBandwidth: rng.Float64() * 300}
		p, err := r.Route(req, cons)
		if err != nil {
			return true // blocking is always allowed
		}
		return VerifyPath(p, prof, cons) == nil && p.Validate(req, caps) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRouterValidation(t *testing.T) {
	loads := uniformLoads(9, 0.2)
	topo, caps, states, prof := hierFixture(t, loads, symmetricBW(9, 100))
	if _, err := NewRouter(nil, states, caps, prof); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := NewRouter(topo, states[:2], caps, prof); err == nil {
		t.Error("short states accepted")
	}
	if _, err := NewRouter(topo, states, caps[:2], prof); err == nil {
		t.Error("short caps accepted")
	}
	r, err := NewRouter(topo, states, caps, prof)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	sg, err := svc.Linear("a")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	if _, err := r.Route(svc.Request{Source: 0, Dest: 99, SG: sg}, Constraints{}); err == nil {
		t.Error("invalid request accepted")
	}
	if _, err := r.Route(svc.Request{Source: 0, Dest: 7, SG: sg}, Constraints{MaxLoad: 2}); err == nil {
		t.Error("invalid constraints accepted")
	}
	if r.Aggregates() == nil {
		t.Error("Aggregates() returned nil")
	}
}
