package qos

import (
	"errors"
	"fmt"

	"hfc/internal/hfc"
	"hfc/internal/routing"
	"hfc/internal/state"
	"hfc/internal/svc"
)

// Router performs hierarchical QoS service routing: the §5 cluster-level
// search constrained by the clusters' advertised QoS aggregates, with child
// requests resolved exactly under the true per-node constraints.
type Router struct {
	topo   *hfc.Topology
	states []state.NodeState
	prof   *Profile
	agg    *Aggregates
	// Policy gates cluster-level bandwidth admission (default
	// PolicyOptimistic; see Policy).
	Policy Policy
}

// NewRouter builds a hierarchical QoS router over a converged framework,
// computing the cluster aggregates once.
func NewRouter(topo *hfc.Topology, states []state.NodeState, caps []svc.CapabilitySet, prof *Profile) (*Router, error) {
	if topo == nil {
		return nil, errors.New("qos: nil topology")
	}
	if len(states) != topo.N() {
		return nil, fmt.Errorf("qos: %d states for %d nodes", len(states), topo.N())
	}
	agg, err := Aggregate(topo, caps, prof)
	if err != nil {
		return nil, err
	}
	return &Router{topo: topo, states: states, prof: prof, agg: agg}, nil
}

// Aggregates exposes the computed per-cluster QoS advertisements.
func (r *Router) Aggregates() *Aggregates { return r.agg }

func (r *Router) policy() Policy {
	if r.Policy == 0 {
		return PolicyOptimistic
	}
	return r.Policy
}

// Route resolves req hierarchically under the constraints. The returned
// path is guaranteed to satisfy them (the aggregation is conservative);
// requests the aggregates cannot admit fail with ErrInfeasible or
// ErrNoProviders even when a flat router with full state would succeed —
// the false-blocking cost of aggregation, measured by the qos experiment.
func (r *Router) Route(req svc.Request, cons Constraints) (*routing.Path, error) {
	if err := cons.validate(); err != nil {
		return nil, err
	}
	if err := req.Validate(r.topo.N()); err != nil {
		return nil, err
	}
	view, err := r.topo.View(req.Dest)
	if err != nil {
		return nil, err
	}
	router := &routing.HierarchicalRouter{
		View:            view,
		State:           &r.states[req.Dest],
		Intra:           &intraSolver{topo: r.topo, states: r.states, prof: r.prof, cons: cons},
		ClusterOfSource: r.topo.ClusterOf,
		Mode:            routing.RelaxBacktrack,
		ClusterAdmissible: func(s svc.Service, c int) bool {
			return r.agg.ClusterAdmissible(r.topo, s, c, cons, r.policy())
		},
		CrossingAdmissible: func(a, b int) bool {
			return r.agg.CrossingAdmissible(a, b, cons)
		},
	}
	res, err := router.Route(req)
	if err != nil {
		return nil, err
	}
	// Conservative aggregation means the composed path must satisfy the
	// true constraints; check anyway so a violation surfaces as a loud
	// error instead of silent QoS debt.
	if err := VerifyPath(res.Path, r.prof, cons); err != nil {
		return nil, fmt.Errorf("qos: internal error: composed path violates constraints: %w", err)
	}
	return res.Path, nil
}

// intraSolver resolves child requests under the true QoS constraints using
// the resolver's SCT_P, mirroring routing.LocalIntraSolver with pruning.
type intraSolver struct {
	topo   *hfc.Topology
	states []state.NodeState
	prof   *Profile
	cons   Constraints
}

var _ routing.IntraSolver = (*intraSolver)(nil)

// SolveChild implements routing.IntraSolver.
func (s *intraSolver) SolveChild(child routing.ChildRequest) (*routing.Path, error) {
	if s.topo.ClusterOf(child.Source) != child.Cluster || s.topo.ClusterOf(child.Dest) != child.Cluster {
		return nil, fmt.Errorf("qos: child endpoints (%d,%d) not in cluster %d", child.Source, child.Dest, child.Cluster)
	}
	if len(child.Services) == 0 {
		if child.Source == child.Dest {
			return &routing.Path{Hops: []routing.Hop{{Node: child.Source}}}, nil
		}
		return &routing.Path{
			Hops:         []routing.Hop{{Node: child.Source}, {Node: child.Dest}},
			DecisionCost: s.topo.Dist(child.Source, child.Dest),
		}, nil
	}
	sg, err := svc.Linear(child.Services...)
	if err != nil {
		return nil, err
	}
	resolver := &s.states[child.Resolver]
	members := s.topo.Members(child.Cluster)
	providers := func(x svc.Service) []int {
		var out []int
		for _, m := range members {
			if set, ok := resolver.SCTP[m]; ok && set.Has(x) {
				out = append(out, m)
			}
		}
		return out
	}
	req := svc.Request{Source: child.Source, Dest: child.Dest, SG: sg}
	return FindPath(req, providers, routing.OracleFunc(s.topo.Dist), s.prof, s.cons, nil)
}
