package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of singleton != 0")
	}
	if Variance(nil) != 0 {
		t.Error("Variance of nil != 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 {
		t.Errorf("Min = %v, want -1", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %v, want 7", Max(xs))
	}
	if Sum(xs) != 11 {
		t.Errorf("Sum = %v, want 11", Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) {
		t.Error("Min(nil) != +Inf")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max(nil) != -Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {120, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{10, 20}, 50); !almostEqual(got, 15) {
		t.Errorf("Percentile interp = %v, want 15", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMedianProperty(t *testing.T) {
	// At least half the samples are <= median and at least half are >=.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		m := Median(xs)
		lo, hi := 0, 0
		for _, x := range xs {
			if x <= m+1e-9 {
				lo++
			}
			if x >= m-1e-9 {
				hi++
			}
		}
		return lo*2 >= n && hi*2 >= n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		ps := []float64{0, 10, 25, 50, 75, 90, 99, 100}
		vals := make([]float64, len(ps))
		for i, p := range ps {
			vals[i] = Percentile(xs, p)
		}
		return sort.Float64sAreSorted(vals)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almostEqual(s.Mean, 3) || !almostEqual(s.Min, 1) || !almostEqual(s.Max, 5) || !almostEqual(s.P50, 3) {
		t.Errorf("Summarize = %+v", s)
	}
	if empty := Summarize(nil); empty.N != 0 {
		t.Errorf("Summarize(nil).N = %d", empty.N)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("Summary.String() = %q, missing n=5", s.String())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 9.99, -5, 100} {
		h.Observe(x)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	// -5 clamps to bucket 0; 100 clamps to bucket 4.
	if h.Buckets[0] != 3 {
		t.Errorf("bucket 0 = %d, want 3", h.Buckets[0])
	}
	if h.Buckets[1] != 1 {
		t.Errorf("bucket 1 = %d, want 1", h.Buckets[1])
	}
	if h.Buckets[4] != 2 {
		t.Errorf("bucket 4 = %d, want 2", h.Buckets[4])
	}
	if out := h.String(); !strings.Contains(out, "#") {
		t.Errorf("String() = %q, missing bars", out)
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 0, 5) },
		func() { NewHistogram(5, 5, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("NewHistogram with invalid args did not panic")
				}
			}()
			fn()
		}()
	}
}
