// Package stats provides small, dependency-free statistical helpers used by
// the simulation harness and the experiment runners: means, deviations,
// percentiles, and fixed-width histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	min := math.Inf(1)
	for _, x := range xs {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return max
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P90    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P50:    Percentile(xs, 50),
		P90:    Percentile(xs, 90),
		P99:    Percentile(xs, 99),
		Max:    Max(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// Histogram is a fixed-width histogram over [Lo, Hi); values outside the
// range are clamped into the first or last bucket.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	count   int
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
// It panics if n <= 0 or hi <= lo, which indicates a programming error.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic(fmt.Sprintf("stats: histogram bucket count %d must be positive", n))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram range [%v, %v) is empty", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Buckets) {
		idx = len(h.Buckets) - 1
	}
	h.Buckets[idx]++
	h.count++
}

// Count returns the total number of observed samples.
func (h *Histogram) Count() int { return h.count }

// String renders the histogram as an ASCII bar chart, one bucket per line.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := 0
	for _, c := range h.Buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*40/maxCount)
		}
		fmt.Fprintf(&b, "[%8.2f,%8.2f) %6d %s\n", h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c, bar)
	}
	return b.String()
}
