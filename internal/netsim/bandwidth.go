package netsim

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"hfc/internal/graph"
)

// ErrNoBandwidthModel is returned when the underlying topology carries no
// bandwidth graph (generators other than transit-stub).
var ErrNoBandwidthModel = errors.New("netsim: topology has no bandwidth model")

// bwState lazily caches per-source shortest-path trees for bottleneck
// queries. Only the QoS extension pays this cost.
type bwState struct {
	mu    sync.Mutex
	trees map[int]*graph.PathResult // guarded by mu
}

// Bottleneck returns the bandwidth available between physical nodes u and
// v: the minimum link capacity along the delay-shortest route — the path
// the network actually carries the stream over. Parallel links between a
// node pair contribute their best capacity. Bottleneck(u, u) is +Inf.
func (n *Network) Bottleneck(u, v int) (float64, error) {
	if n.topo.BandwidthGraph == nil {
		return 0, ErrNoBandwidthModel
	}
	if u < 0 || u >= n.N() || v < 0 || v >= n.N() {
		return 0, fmt.Errorf("netsim: bottleneck query (%d,%d) out of range [0,%d)", u, v, n.N())
	}
	if u == v {
		return math.Inf(1), nil
	}
	tree, err := n.spTree(u)
	if err != nil {
		return 0, err
	}
	path, err := tree.PathTo(v)
	if err != nil {
		return 0, fmt.Errorf("netsim: %w", err)
	}
	bottleneck := math.Inf(1)
	for i := 0; i+1 < len(path); i++ {
		bw := n.topo.LinkBandwidth(path[i], path[i+1])
		if bw <= 0 {
			return 0, fmt.Errorf("netsim: no bandwidth recorded for link (%d,%d)", path[i], path[i+1])
		}
		if bw < bottleneck {
			bottleneck = bw
		}
	}
	return bottleneck, nil
}

// spTree returns (building and caching on first use) the delay
// shortest-path tree rooted at source.
func (n *Network) spTree(source int) (*graph.PathResult, error) {
	n.bw.mu.Lock()
	defer n.bw.mu.Unlock()
	if n.bw.trees == nil {
		n.bw.trees = make(map[int]*graph.PathResult)
	}
	if t, ok := n.bw.trees[source]; ok {
		return t, nil
	}
	t, err := n.topo.Graph.Dijkstra(source)
	if err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	n.bw.trees[source] = t
	return t, nil
}
