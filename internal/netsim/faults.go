package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// LinkFault describes a partial failure of one directed link — the fault
// vocabulary the chaos engine (internal/chaos) schedules over the overlay,
// exposed here as a standalone knob so measurement simulations can impair
// individual links too (the global noise knob stays WithNoise). The zero
// value is a healthy link.
type LinkFault struct {
	// Cut hard-partitions the link: every message (and probe sample via
	// Lost) is dropped regardless of Drop.
	Cut bool
	// Drop is the per-message loss probability in [0, 1].
	Drop float64
	// DelayFactor multiplies the link's base propagation delay; zero means
	// unchanged (so the zero value stays a no-op), values > 1 inflate the
	// link, values in (0, 1) would model an improving link.
	DelayFactor float64
	// DelayAddMS is a constant additive latency in milliseconds — a
	// congested or rerouted link's queueing floor.
	DelayAddMS float64
	// JitterMS adds a uniform [0, JitterMS) extra delay per message/probe.
	JitterMS float64
	// DuplicateRate is the probability a message is delivered twice
	// (message-level integrations only; probes are never duplicated).
	DuplicateRate float64
	// ReorderRate is the probability a message is held back one extra
	// jitter window (JitterMS, minimum 1ms) so messages sent after it
	// overtake it — the standard delay-based reordering model.
	ReorderRate float64
}

// IsZero reports whether the fault is a healthy no-op link.
func (f LinkFault) IsZero() bool { return f == LinkFault{} }

// Validate checks all probabilistic fields are probabilities and delays are
// non-negative.
func (f LinkFault) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"Drop", f.Drop}, {"DuplicateRate", f.DuplicateRate}, {"ReorderRate", f.ReorderRate}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netsim: link fault %s %v outside [0,1]", p.name, p.v)
		}
	}
	if f.DelayFactor < 0 || f.DelayAddMS < 0 || f.JitterMS < 0 {
		return fmt.Errorf("netsim: link fault has negative delay field (factor=%v add=%v jitter=%v)",
			f.DelayFactor, f.DelayAddMS, f.JitterMS)
	}
	return nil
}

// Merge combines two faults acting on the same link: cuts accumulate, rates
// and factors take the worse of the two, additive delays sum. Merging with
// the zero fault returns the receiver unchanged.
func (f LinkFault) Merge(g LinkFault) LinkFault {
	out := f
	out.Cut = f.Cut || g.Cut
	out.Drop = maxf(f.Drop, g.Drop)
	out.DelayFactor = maxf(f.DelayFactor, g.DelayFactor)
	out.DelayAddMS = f.DelayAddMS + g.DelayAddMS
	out.JitterMS = maxf(f.JitterMS, g.JitterMS)
	out.DuplicateRate = maxf(f.DuplicateRate, g.DuplicateRate)
	out.ReorderRate = maxf(f.ReorderRate, g.ReorderRate)
	return out
}

// DelayMS returns the fault-adjusted one-way delay for a link whose healthy
// delay is baseMS, using u in [0, 1) as the jitter draw (pass 0 for the
// deterministic floor).
func (f LinkFault) DelayMS(baseMS, u float64) float64 {
	d := baseMS
	if f.DelayFactor > 0 {
		d *= f.DelayFactor
	}
	return d + f.DelayAddMS + u*f.JitterMS
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// FaultTable is a concurrency-safe registry of per-directed-link fault
// overrides. A Network carries one (initially empty); the chaos engine keeps
// its own merged table over the overlay's links using the same LinkFault
// vocabulary.
type FaultTable struct {
	mu    sync.RWMutex
	links map[[2]int]LinkFault // guarded by mu
}

// NewFaultTable returns an empty table.
func NewFaultTable() *FaultTable {
	return &FaultTable{links: make(map[[2]int]LinkFault)}
}

// Set installs (replaces) the fault on the directed link u→v. A zero fault
// clears the entry.
func (t *FaultTable) Set(u, v int, f LinkFault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f.IsZero() {
		delete(t.links, [2]int{u, v})
		return
	}
	t.links[[2]int{u, v}] = f
}

// SetBoth installs the fault on both directions of the link.
func (t *FaultTable) SetBoth(u, v int, f LinkFault) {
	t.Set(u, v, f)
	t.Set(v, u, f)
}

// Clear removes the fault on the directed link u→v.
func (t *FaultTable) Clear(u, v int) { t.Set(u, v, LinkFault{}) }

// ClearBoth removes the faults on both directions of the link.
func (t *FaultTable) ClearBoth(u, v int) {
	t.Clear(u, v)
	t.Clear(v, u)
}

// Reset removes every fault.
func (t *FaultTable) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.links = make(map[[2]int]LinkFault)
}

// Lookup returns the fault on the directed link u→v; ok is false for a
// healthy link.
func (t *FaultTable) Lookup(u, v int) (LinkFault, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, ok := t.links[[2]int{u, v}]
	return f, ok
}

// Len returns the number of impaired directed links.
func (t *FaultTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.links)
}

// Faults returns the network's per-link fault table. It starts empty; any
// fault installed applies to subsequent Ping/MeasureMin/Lost calls, making
// the delay oracle's measured (not true) latencies reflect gray links.
func (n *Network) Faults() *FaultTable { return n.faults }

// Lost samples whether a single datagram on u→v is lost to the link's
// configured fault (Cut always loses; otherwise Bernoulli(Drop)). Healthy
// links never lose.
func (n *Network) Lost(rng *rand.Rand, u, v int) bool {
	f, ok := n.faults.Lookup(u, v)
	if !ok {
		return false
	}
	if f.Cut {
		return true
	}
	return f.Drop > 0 && rng.Float64() < f.Drop
}

// EffectiveLatency returns the fault-adjusted one-way delay between u and v
// with no jitter or noise — the deterministic floor a perfect measurement
// would converge to on an impaired link.
func (n *Network) EffectiveLatency(u, v int) float64 {
	base := n.Latency(u, v)
	if f, ok := n.faults.Lookup(u, v); ok {
		return f.DelayMS(base, 0)
	}
	return base
}

// OverlayLatency adapts the network's deterministic delay model to the
// overlay runtime's Config.Latency hook: every proxy-to-proxy delivery is
// charged the fault-adjusted one-way delay of the underlying physical
// path, scaled by `scale` (1.0 charges real milliseconds; a virtual-time
// simulation is free to compress or stretch). Proxy i must live on
// physical node i — callers overlaying a subset of the physical network
// wrap the returned function with their own ID mapping. The result is
// deterministic and safe for concurrent use alongside fault updates.
func (n *Network) OverlayLatency(scale float64) func(u, v int) time.Duration {
	return func(u, v int) time.Duration {
		return time.Duration(n.EffectiveLatency(u, v) * scale * float64(time.Millisecond))
	}
}
