package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hfc/internal/graph"
	"hfc/internal/topology"
)

func testTopology(t *testing.T, seed int64) *topology.Topology {
	t.Helper()
	topo, err := topology.GenerateTransitStub(rand.New(rand.NewSource(seed)), topology.DefaultTransitStubConfig())
	if err != nil {
		t.Fatalf("GenerateTransitStub: %v", err)
	}
	return topo
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil) succeeded")
	}
	topo := testTopology(t, 1)
	if _, err := New(topo, WithNoise(-0.5)); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestNewRejectsDisconnected(t *testing.T) {
	bare := &topology.Topology{Graph: graph.New(4, false)}
	if _, err := New(bare); err == nil {
		t.Error("disconnected topology accepted")
	}
}

func TestLatencyProperties(t *testing.T) {
	topo := testTopology(t, 2)
	net, err := New(topo)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 20; i++ {
		if net.Latency(i, i) != 0 {
			t.Errorf("Latency(%d,%d) = %v, want 0", i, i, net.Latency(i, i))
		}
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		u, v := rng.Intn(net.N()), rng.Intn(net.N())
		//hfcvet:ignore floatdist latency symmetry is an identity on the same table entry
		if d, rd := net.Latency(u, v), net.Latency(v, u); d != rd {
			t.Errorf("Latency(%d,%d) = %v != Latency(%d,%d) = %v", u, v, d, v, u, rd)
		}
		if u != v && net.Latency(u, v) <= 0 {
			t.Errorf("Latency(%d,%d) = %v, want > 0", u, v, net.Latency(u, v))
		}
	}
}

func TestLatencyPanicsOutOfRange(t *testing.T) {
	topo := testTopology(t, 2)
	net, err := New(topo)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Latency out of range did not panic")
		}
	}()
	net.Latency(-1, 0)
}

func TestPingNoiseIsBoundedAndPositive(t *testing.T) {
	topo := testTopology(t, 3)
	net, err := New(topo, WithNoise(0.3))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		u, v := rng.Intn(net.N()), rng.Intn(net.N())
		truth := net.Latency(u, v)
		p := net.Ping(rng, u, v)
		if p < truth-1e-12 {
			t.Fatalf("Ping(%d,%d) = %v below true latency %v", u, v, p, truth)
		}
		if p > truth*1.3+1e-12 {
			t.Fatalf("Ping(%d,%d) = %v above noise bound %v", u, v, p, truth*1.3)
		}
	}
}

func TestPingZeroNoiseIsExact(t *testing.T) {
	topo := testTopology(t, 3)
	net, err := New(topo, WithNoise(0))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	u, v := 1, 50
	//hfcvet:ignore floatdist zero-noise ping is defined as exactly the latency
	if net.Ping(rng, u, v) != net.Latency(u, v) {
		t.Error("zero-noise ping differs from latency")
	}
}

func TestMeasureMinConvergesTowardTruth(t *testing.T) {
	topo := testTopology(t, 5)
	net, err := New(topo, WithNoise(0.5))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(6))
	u, v := 2, 80
	truth := net.Latency(u, v)
	one, err := net.MeasureMin(rng, u, v, 1)
	if err != nil {
		t.Fatalf("MeasureMin: %v", err)
	}
	many, err := net.MeasureMin(rng, u, v, 30)
	if err != nil {
		t.Fatalf("MeasureMin: %v", err)
	}
	if many > one+1e-12 {
		// A single draw could already be near-minimal, but with 30 probes
		// the minimum cannot exceed any single earlier probe in
		// expectation; allow equality only.
		t.Logf("warning: 30-probe min %v above 1-probe %v (possible but rare)", many, one)
	}
	if many > truth*1.1 {
		t.Errorf("30-probe measurement %v not within 10%% of truth %v", many, truth)
	}
}

func TestMeasureMinValidation(t *testing.T) {
	topo := testTopology(t, 5)
	net, err := New(topo)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := net.MeasureMin(rand.New(rand.NewSource(1)), 0, 1, 0); err == nil {
		t.Error("MeasureMin with 0 probes succeeded")
	}
}

func TestLatencyTriangleInequalityProperty(t *testing.T) {
	topo := testTopology(t, 8)
	net, err := New(topo)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	check := func(a, b, c uint16) bool {
		n := net.N()
		i, j, k := int(a)%n, int(b)%n, int(c)%n
		return net.Latency(i, j) <= net.Latency(i, k)+net.Latency(k, j)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
