package netsim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hfc/internal/topology"
)

func TestBottleneckBasics(t *testing.T) {
	topo := testTopology(t, 21)
	if topo.BandwidthGraph == nil {
		t.Fatal("transit-stub topology missing bandwidth graph")
	}
	net, err := New(topo)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	self, err := net.Bottleneck(3, 3)
	if err != nil {
		t.Fatalf("Bottleneck(3,3): %v", err)
	}
	if !math.IsInf(self, 1) {
		t.Errorf("Bottleneck(3,3) = %v, want +Inf", self)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		u, v := rng.Intn(net.N()), rng.Intn(net.N())
		if u == v {
			continue
		}
		bw, err := net.Bottleneck(u, v)
		if err != nil {
			t.Fatalf("Bottleneck(%d,%d): %v", u, v, err)
		}
		if bw <= 0 || math.IsInf(bw, 1) {
			t.Fatalf("Bottleneck(%d,%d) = %v", u, v, bw)
		}
		// The default bandwidth classes bound every link in [20, 2500].
		if bw < 20 || bw > 2500 {
			t.Fatalf("Bottleneck(%d,%d) = %v outside configured classes", u, v, bw)
		}
	}
}

func TestBottleneckHierarchy(t *testing.T) {
	// Cross-transit-domain routes traverse at least one thin stub access
	// segment on each side, so their bottleneck can never exceed the
	// intra-stub/transit-stub maximum; intra-stub routes are bounded by
	// intra-stub capacity. Statistically, intra-stub pairs should not have
	// lower mean bottleneck than cross-domain pairs.
	topo := testTopology(t, 22)
	net, err := New(topo)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var intra, cross []float64
	for i, a := range topo.Nodes {
		for j := i + 1; j < len(topo.Nodes); j += 17 {
			b := topo.Nodes[j]
			if a.Kind != topology.KindStub || b.Kind != topology.KindStub {
				continue
			}
			bw, err := net.Bottleneck(a.ID, b.ID)
			if err != nil {
				t.Fatalf("Bottleneck: %v", err)
			}
			switch {
			case a.StubDomain == b.StubDomain:
				intra = append(intra, bw)
			case a.TransitDomain != b.TransitDomain:
				cross = append(cross, bw)
			}
		}
	}
	if len(intra) == 0 || len(cross) == 0 {
		t.Skip("sampling produced no pairs")
	}
	for _, bw := range cross {
		if bw > 400 { // max transit-stub capacity: every cross path has 2 access links
			t.Fatalf("cross-domain bottleneck %v exceeds access-link ceiling", bw)
		}
	}
}

func TestBottleneckValidation(t *testing.T) {
	topo := testTopology(t, 23)
	net, err := New(topo)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := net.Bottleneck(-1, 0); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := net.Bottleneck(0, net.N()); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestBottleneckNoModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	flat, err := topology.GenerateFlatRandom(rng, 20, 0.2, topology.DelayRange{Lo: 1, Hi: 5})
	if err != nil {
		t.Fatalf("GenerateFlatRandom: %v", err)
	}
	net, err := New(flat)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := net.Bottleneck(0, 1); !errors.Is(err, ErrNoBandwidthModel) {
		t.Errorf("err = %v, want ErrNoBandwidthModel", err)
	}
}

func TestBottleneckDeterministicAndCached(t *testing.T) {
	topo := testTopology(t, 24)
	net, err := New(topo)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, err := net.Bottleneck(5, 100)
	if err != nil {
		t.Fatalf("Bottleneck: %v", err)
	}
	b, err := net.Bottleneck(5, 100)
	if err != nil {
		t.Fatalf("Bottleneck: %v", err)
	}
	//hfcvet:ignore floatdist repeat of a cached query must be bitwise identical
	if a != b {
		t.Errorf("repeated queries differ: %v vs %v", a, b)
	}
}

func TestLinkBandwidthDirectOnly(t *testing.T) {
	topo := testTopology(t, 25)
	// Pick an actual edge and a non-edge.
	edges := topo.Graph.Edges()
	e := edges[0]
	if bw := topo.LinkBandwidth(e.From, e.To); bw <= 0 {
		t.Errorf("LinkBandwidth of real edge = %v", bw)
	}
	// Find a non-adjacent pair.
	for u := 0; u < topo.N(); u++ {
		for v := 0; v < topo.N(); v++ {
			if u != v && !topo.Graph.HasEdge(u, v) {
				if bw := topo.LinkBandwidth(u, v); bw != 0 {
					t.Errorf("LinkBandwidth(%d,%d) = %v for non-edge", u, v, bw)
				}
				return
			}
		}
	}
}
