package netsim

import (
	"math"
	"math/rand"
	"testing"

	"hfc/internal/topology"
)

func faultNet(t *testing.T, noise float64) *Network {
	t.Helper()
	topo, err := topology.GenerateWaxman(rand.New(rand.NewSource(5)), 30, 1000, 0.6, 0.6)
	if err != nil {
		t.Fatalf("GenerateWaxman: %v", err)
	}
	n, err := New(topo, WithNoise(noise))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestLinkFaultValidateAndMerge(t *testing.T) {
	if err := (LinkFault{Drop: 1.5}).Validate(); err == nil {
		t.Error("Drop > 1 accepted")
	}
	if err := (LinkFault{DelayAddMS: -1}).Validate(); err == nil {
		t.Error("negative DelayAddMS accepted")
	}
	if err := (LinkFault{Drop: 0.5, DelayFactor: 3, JitterMS: 2}).Validate(); err != nil {
		t.Errorf("valid fault rejected: %v", err)
	}
	a := LinkFault{Drop: 0.2, DelayAddMS: 10, DelayFactor: 2}
	b := LinkFault{Drop: 0.5, DelayAddMS: 5, JitterMS: 3, Cut: true}
	m := a.Merge(b)
	want := LinkFault{Cut: true, Drop: 0.5, DelayFactor: 2, DelayAddMS: 15, JitterMS: 3}
	if m != want {
		t.Errorf("Merge = %+v, want %+v", m, want)
	}
	if got := a.Merge(LinkFault{}); got != a {
		t.Errorf("Merge with zero = %+v, want %+v", got, a)
	}
}

func TestFaultTableSetClearLookup(t *testing.T) {
	tab := NewFaultTable()
	f := LinkFault{Drop: 0.3}
	tab.SetBoth(1, 2, f)
	if got, ok := tab.Lookup(2, 1); !ok || got != f {
		t.Fatalf("Lookup(2,1) = %+v, %v", got, ok)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	tab.Clear(1, 2)
	if _, ok := tab.Lookup(1, 2); ok {
		t.Error("cleared link still faulted")
	}
	if _, ok := tab.Lookup(2, 1); !ok {
		t.Error("directed clear removed the reverse direction")
	}
	// Setting the zero fault clears.
	tab.Set(2, 1, LinkFault{})
	if tab.Len() != 0 {
		t.Fatalf("Len after clears = %d, want 0", tab.Len())
	}
	tab.Set(3, 4, f)
	tab.Reset()
	if tab.Len() != 0 {
		t.Error("Reset left entries behind")
	}
}

func TestPingAppliesLinkFault(t *testing.T) {
	n := faultNet(t, 0) // no measurement noise: ping == effective latency
	base := n.Latency(0, 1)
	n.Faults().Set(0, 1, LinkFault{DelayFactor: 2, DelayAddMS: 7})
	rng := rand.New(rand.NewSource(1))
	got := n.Ping(rng, 0, 1)
	want := base*2 + 7
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("faulted Ping = %v, want %v", got, want)
	}
	// The reverse direction is unimpaired.
	if got := n.Ping(rng, 1, 0); math.Abs(got-n.Latency(1, 0)) > 1e-9 {
		t.Errorf("reverse Ping = %v, want clean %v", got, n.Latency(1, 0))
	}
	if got := n.EffectiveLatency(0, 1); math.Abs(got-want) > 1e-9 {
		t.Errorf("EffectiveLatency = %v, want %v", got, want)
	}
	// Jitter stays within its window.
	n.Faults().Set(0, 1, LinkFault{JitterMS: 5})
	for i := 0; i < 50; i++ {
		p := n.Ping(rng, 0, 1)
		if p < base || p >= base+5 {
			t.Fatalf("jittered Ping %v outside [%v, %v)", p, base, base+5)
		}
	}
}

func TestPingUnchangedWithoutFaults(t *testing.T) {
	// The rng stream with an empty fault table must match the historical
	// behaviour exactly, or construction-time measurements would shift.
	a := faultNet(t, 0.25)
	b := faultNet(t, 0.25)
	ra, rb := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		u, v := i%a.N(), (i*7+1)%a.N()
		//hfcvet:ignore floatdist the streams must match bit-identically, not approximately
		if pa, pb := a.Ping(ra, u, v), b.Ping(rb, u, v); pa != pb {
			t.Fatalf("ping %d: %v != %v", i, pa, pb)
		}
	}
}

func TestLost(t *testing.T) {
	n := faultNet(t, 0)
	rng := rand.New(rand.NewSource(3))
	if n.Lost(rng, 0, 1) {
		t.Error("healthy link lost a datagram")
	}
	n.Faults().Set(0, 1, LinkFault{Cut: true})
	for i := 0; i < 10; i++ {
		if !n.Lost(rng, 0, 1) {
			t.Fatal("cut link delivered a datagram")
		}
	}
	n.Faults().Set(0, 1, LinkFault{Drop: 0.5})
	lost := 0
	for i := 0; i < 2000; i++ {
		if n.Lost(rng, 0, 1) {
			lost++
		}
	}
	if lost < 800 || lost > 1200 {
		t.Errorf("Drop=0.5 lost %d/2000, want ~1000", lost)
	}
}
