// Package netsim simulates the physical Internet underneath the service
// overlay. It plays the role ns-2 plays in the paper: given a generated
// topology it answers end-to-end delay queries (shortest-path propagation
// delay) and simulates application-level RTT measurements ("pings") with
// multiplicative noise, of which the measurement layer takes the minimum of
// several probes as the paper prescribes (§3.1).
package netsim

import (
	"errors"
	"fmt"
	"math/rand"

	"hfc/internal/graph"
	"hfc/internal/topology"
)

// Network is a delay oracle over a physical topology. It is immutable after
// construction and safe for concurrent use.
type Network struct {
	topo *topology.Topology
	apsp *graph.APSP
	// noiseMax bounds the multiplicative measurement noise: a single probe
	// observes latency · (1 + U[0, noiseMax]).
	noiseMax float64
	// workers bounds the worker pool the all-pairs precomputation fans
	// out on (0/1 serial, negative = all cores); results are identical
	// either way.
	workers int
	// bw caches shortest-path trees for Bottleneck queries.
	bw bwState
	// faults holds the per-link fault overrides (see faults.go); the table
	// is internally synchronized, so installing faults is the one mutation
	// a Network supports after construction.
	faults *FaultTable
}

// Option customizes network construction.
type Option func(*Network)

// WithNoise sets the maximum multiplicative probe noise (default 0.25,
// i.e. a single probe can overshoot the true delay by up to 25%). Noise is
// always non-negative: queueing only ever adds delay to the propagation
// floor, which is why taking the minimum of several probes recovers a value
// close to the true distance.
func WithNoise(max float64) Option {
	return func(n *Network) { n.noiseMax = max }
}

// WithWorkers bounds the worker pool used for the up-front all-pairs
// shortest-path computation (zero or one keeps it serial, negative uses
// every core). The resulting delay matrix is bit-identical regardless.
func WithWorkers(workers int) Option {
	return func(n *Network) { n.workers = workers }
}

// New builds a delay oracle for topo by computing all-pairs shortest-path
// delays once up front.
func New(topo *topology.Topology, opts ...Option) (*Network, error) {
	if topo == nil {
		return nil, errors.New("netsim: nil topology")
	}
	if !topo.Graph.Connected() {
		return nil, errors.New("netsim: topology is disconnected")
	}
	n := &Network{topo: topo, noiseMax: 0.25, faults: NewFaultTable()}
	for _, opt := range opts {
		opt(n)
	}
	if n.noiseMax < 0 {
		return nil, fmt.Errorf("netsim: negative noise bound %v", n.noiseMax)
	}
	apsp, err := topo.Graph.AllPairsShortestPathsWorkers(n.workers)
	if err != nil {
		return nil, fmt.Errorf("netsim: computing delays: %w", err)
	}
	// Clustering and MST construction treat latencies as a metric; make the
	// matrix exactly symmetric (Dijkstra leaves ULP-level asymmetry).
	apsp.Symmetrize()
	n.apsp = apsp
	return n, nil
}

// Topology returns the underlying physical topology.
func (n *Network) Topology() *topology.Topology { return n.topo }

// N returns the number of physical nodes.
func (n *Network) N() int { return n.topo.N() }

// Latency returns the true one-way propagation delay between physical nodes
// u and v in milliseconds. It panics on out-of-range IDs, which indicates a
// programming error in the caller.
func (n *Network) Latency(u, v int) float64 {
	if u < 0 || u >= n.N() || v < 0 || v >= n.N() {
		panic(fmt.Sprintf("netsim: latency query (%d,%d) out of range [0,%d)", u, v, n.N()))
	}
	return n.apsp.Dist(u, v)
}

// Ping simulates one application-level delay measurement between u and v:
// the true latency, adjusted for any installed link fault (delay inflation
// and jitter; see Faults), then inflated by multiplicative noise drawn from
// rng. Loss is not modeled here — callers simulating datagrams sample Lost
// separately, since a lost probe yields no measurement at all.
func (n *Network) Ping(rng *rand.Rand, u, v int) float64 {
	base := n.Latency(u, v)
	if f, ok := n.faults.Lookup(u, v); ok {
		var jitter float64
		if f.JitterMS > 0 {
			jitter = rng.Float64()
		}
		base = f.DelayMS(base, jitter)
	}
	if n.noiseMax == 0 {
		return base
	}
	return base * (1 + rng.Float64()*n.noiseMax)
}

// MeasureMin returns the minimum of probes pings between u and v — the
// noise-suppression procedure from §3.1 ("To minimize the effect of Internet
// noises, we take the minimum value of several measurements").
func (n *Network) MeasureMin(rng *rand.Rand, u, v, probes int) (float64, error) {
	if probes < 1 {
		return 0, fmt.Errorf("netsim: probe count %d must be >= 1", probes)
	}
	best := n.Ping(rng, u, v)
	for i := 1; i < probes; i++ {
		if p := n.Ping(rng, u, v); p < best {
			best = p
		}
	}
	return best, nil
}
