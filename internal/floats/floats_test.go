package floats

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{0.1 + 0.2, 0.3, true}, // the classic accumulated-error case
		{1, 1 + 1e-12, true},
		{1e9, 1e9 * (1 + 1e-12), true},
		{1, 1.001, false},
		{0, 1e-3, false},
		{-1, 1, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.Inf(1), 1e300, false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 1, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b); got != c.want {
			t.Errorf("AlmostEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAlmostEqualSymmetric(t *testing.T) {
	pairs := [][2]float64{{1, 1 + 1e-12}, {1e-30, 2e-30}, {5, 7}, {0, Eps}}
	for _, p := range pairs {
		if AlmostEqual(p[0], p[1]) != AlmostEqual(p[1], p[0]) {
			t.Errorf("AlmostEqual asymmetric for %v", p)
		}
	}
}
