// Package floats holds the epsilon comparison helpers the floatdist
// analyzer steers float64 distance/coordinate comparisons through.
package floats

import "math"

// Eps is the default tolerance for distance and coordinate comparisons:
// loose enough to absorb the associativity noise of summing link delays
// in different orders, tight enough to keep distinct embedded distances
// (O(1) apart in every generator) distinguishable.
const Eps = 1e-9

// AlmostEqual reports whether a and b are equal within a mixed
// absolute/relative tolerance of Eps. Infinities compare equal only to
// themselves; NaN is equal to nothing, as usual.
func AlmostEqual(a, b float64) bool {
	if a == b { //hfcvet:ignore floatdist fast path and infinity handling need the exact compare
		return true
	}
	diff := math.Abs(a - b)
	if math.IsInf(diff, 0) || math.IsNaN(diff) {
		// Any remaining infinity (or NaN operand) differs: the fast path
		// above already matched equal infinities, and Eps·Inf ≤ Inf would
		// otherwise call +Inf "almost equal" to every large finite value.
		return false
	}
	if diff <= Eps {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= Eps*scale
}
