package core

import (
	"math/rand"
	"testing"

	"hfc/internal/netsim"
	"hfc/internal/routing"
	"hfc/internal/svc"
	"hfc/internal/topology"
)

// buildWorld creates a physical network and role assignments for Bootstrap.
func buildWorld(t *testing.T, seed int64, landmarks, proxies int) (*netsim.Network, []int, []int, []svc.CapabilitySet) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	topo, err := topology.GenerateTransitStub(rng, topology.DefaultTransitStubConfig())
	if err != nil {
		t.Fatalf("GenerateTransitStub: %v", err)
	}
	net, err := netsim.New(topo)
	if err != nil {
		t.Fatalf("netsim.New: %v", err)
	}
	stubs := topo.StubNodes()
	perm := rng.Perm(len(stubs))
	lm := make([]int, landmarks)
	for i := range lm {
		lm[i] = stubs[perm[i]]
	}
	px := make([]int, proxies)
	for i := range px {
		px[i] = stubs[perm[landmarks+i]]
	}
	cat, err := svc.NewCatalog(15)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	caps, err := svc.RandomCapabilities(rng, proxies, cat, 2, 5)
	if err != nil {
		t.Fatalf("RandomCapabilities: %v", err)
	}
	return net, lm, px, caps
}

func TestBootstrapEndToEnd(t *testing.T) {
	net, lm, px, caps := buildWorld(t, 1, 8, 50)
	rng := rand.New(rand.NewSource(2))
	fw, err := Bootstrap(rng, net, lm, px, caps, Config{})
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if fw.N() != 50 {
		t.Errorf("N = %d, want 50", fw.N())
	}
	if fw.NumClusters() < 2 {
		t.Errorf("clusters = %d, want >= 2 on transit-stub", fw.NumClusters())
	}
	if err := fw.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(fw.LandmarkCoords()) != 8 {
		t.Errorf("landmark coords = %d, want 8", len(fw.LandmarkCoords()))
	}
	if fw.StateMessageStats().Total() == 0 {
		t.Error("no state messages recorded")
	}

	gen, err := svc.NewRequestGenerator(rng, caps, 2, 5)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	for i := 0; i < 20; i++ {
		req, err := gen.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		p, err := fw.Route(req)
		if err != nil {
			t.Fatalf("Route: %v", err)
		}
		if err := p.Validate(req, caps); err != nil {
			t.Errorf("request %d: invalid path: %v", i, err)
		}
	}
}

func TestRouteDetailedExposesArtifacts(t *testing.T) {
	net, lm, px, caps := buildWorld(t, 3, 8, 40)
	rng := rand.New(rand.NewSource(4))
	fw, err := Bootstrap(rng, net, lm, px, caps, Config{})
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	gen, err := svc.NewRequestGenerator(rng, caps, 3, 5)
	if err != nil {
		t.Fatalf("NewRequestGenerator: %v", err)
	}
	req, err := gen.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	res, err := fw.RouteDetailed(req)
	if err != nil {
		t.Fatalf("RouteDetailed: %v", err)
	}
	if len(res.CSP) != req.SG.Len() {
		t.Errorf("CSP has %d entries for %d services", len(res.CSP), req.SG.Len())
	}
	if len(res.Children) == 0 || len(res.ChildPaths) != len(res.Children) {
		t.Errorf("children/paths inconsistent: %d vs %d", len(res.Children), len(res.ChildPaths))
	}
	if res.Path == nil {
		t.Fatal("nil final path")
	}
}

func TestBootstrapValidation(t *testing.T) {
	net, lm, px, caps := buildWorld(t, 5, 8, 20)
	rng := rand.New(rand.NewSource(6))
	if _, err := Bootstrap(nil, net, lm, px, caps, Config{}); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := Bootstrap(rng, net, lm, px, caps[:3], Config{}); err == nil {
		t.Error("mismatched caps accepted")
	}
	if _, err := Bootstrap(rng, net, lm[:1], px, caps, Config{}); err == nil {
		t.Error("single landmark accepted")
	}
	if _, err := Bootstrap(rng, nil, lm, px, caps, Config{}); err == nil {
		t.Error("nil measurer accepted")
	}
}

func TestRouteValidatesRequest(t *testing.T) {
	net, lm, px, caps := buildWorld(t, 7, 8, 20)
	rng := rand.New(rand.NewSource(8))
	fw, err := Bootstrap(rng, net, lm, px, caps, Config{})
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	sg, err := svc.Linear("s0")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	if _, err := fw.Route(svc.Request{Source: 0, Dest: 99, SG: sg}); err == nil {
		t.Error("out-of-range dest accepted")
	}
	if _, err := fw.RouteDetailed(svc.Request{Source: -1, Dest: 0, SG: sg}); err == nil {
		t.Error("negative source accepted")
	}
}

func TestConfigRelaxModesWork(t *testing.T) {
	net, lm, px, caps := buildWorld(t, 9, 6, 30)
	for _, mode := range []routing.RelaxMode{routing.RelaxBacktrack, routing.RelaxExact, routing.RelaxExternalOnly} {
		rng := rand.New(rand.NewSource(10))
		fw, err := Bootstrap(rng, net, lm, px, caps, Config{Relax: mode})
		if err != nil {
			t.Fatalf("Bootstrap(%v): %v", mode, err)
		}
		gen, err := svc.NewRequestGenerator(rng, caps, 2, 4)
		if err != nil {
			t.Fatalf("NewRequestGenerator: %v", err)
		}
		req, err := gen.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		p, err := fw.Route(req)
		if err != nil {
			t.Fatalf("Route(%v): %v", mode, err)
		}
		if err := p.Validate(req, caps); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}

func TestCapabilitiesAreIsolated(t *testing.T) {
	net, lm, px, caps := buildWorld(t, 11, 6, 20)
	rng := rand.New(rand.NewSource(12))
	fw, err := Bootstrap(rng, net, lm, px, caps, Config{})
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	caps[0].Add("mutated-after-bootstrap")
	if fw.Capabilities()[0].Has("mutated-after-bootstrap") {
		t.Error("framework aliases caller capability sets")
	}
}

func TestAccessorsAndValidate(t *testing.T) {
	net, lm, px, caps := buildWorld(t, 13, 6, 20)
	rng := rand.New(rand.NewSource(14))
	fw, err := Bootstrap(rng, net, lm, px, caps, Config{})
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if fw.Topology() == nil {
		t.Error("Topology() nil")
	}
	if len(fw.States()) != fw.N() {
		t.Errorf("States() has %d entries, want %d", len(fw.States()), fw.N())
	}
	// Corrupt the framework's state: Validate must notice.
	fw.States()[0].SCTC[0].Add("corruption")
	if err := fw.Validate(); err == nil {
		t.Error("Validate passed on corrupted state")
	}
}
