// Package core assembles the paper's complete HFC service-routing
// middleware out of its substrates — the one-stop public API of this
// library. Bootstrap runs the full §3–§4 pipeline:
//
//  1. distance-map obtainment: landmark measurements + GNP coordinate
//     embedding (§3.1);
//  2. distance-based clustering with Zahn's MST method (§3.2);
//  3. HFC topology construction with closest-pair border selection (§3.3);
//  4. hierarchical state distribution: SCT_P / SCT_C convergence (§4).
//
// The resulting Framework answers service requests with the hierarchical
// divide-and-conquer routing of §5.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/hfc"
	"hfc/internal/routing"
	"hfc/internal/serve"
	"hfc/internal/state"
	"hfc/internal/svc"
)

// Config tunes framework construction. The zero value selects the paper's
// settings (2-D coordinates, 5 probes per measurement, MST clustering
// defaults, back-tracking cluster-level relaxation).
type Config struct {
	// CoordDim is the embedding dimension (§6.1 uses 2).
	CoordDim int
	// Probes is the number of delay probes per measurement, of which the
	// minimum is kept (§3.1).
	Probes int
	// Cluster configures the MST inconsistency detection.
	Cluster cluster.Config
	// Relax selects the cluster-level relaxation mode (§5.1 step 2).
	Relax routing.RelaxMode
	// Workers bounds the worker pool Bootstrap fans the rng-free pipeline
	// stages out on — coordinate solves, pairwise distances, border scans
	// (0/1 serial, negative = all cores). The framework is bit-identical
	// for any value; see internal/par for the determinism contract.
	Workers int
	// CacheRoutes enables an invalidation-aware route cache inside the
	// Framework. Bootstrap's states are static, so entries never go stale;
	// repeated requests are answered from cache. Default off.
	CacheRoutes bool
	// ServeEngine attaches a concurrent route-serving engine
	// (internal/serve) to the Framework: Route answers through its sharded
	// cache, inverted provider indexes, and in-flight deduplication, and
	// Engine() exposes it for batched resolution and capability updates.
	// Supersedes CacheRoutes (the engine always caches). Default off.
	ServeEngine bool
	// CacheShards overrides the serving engine's route-cache shard count
	// (0 selects routing.DefaultCacheShards). Ignored without ServeEngine.
	CacheShards int
	// DenseMatrix materializes the full O(n²) pairwise-distance matrix and
	// serves clustering distances from it, as pre-geo builds did. The
	// spatial-index construction path never needs it; enable only when the
	// memory trade is worthwhile (small overlays with heavy repeated
	// dist(i,j) churn, APSP/mesh experiments). Values are identical to
	// coords.Dist, so the built framework is unchanged either way.
	DenseMatrix bool
}

func (c Config) withDefaults() Config {
	if c.CoordDim == 0 {
		c.CoordDim = 2
	}
	if c.Probes == 0 {
		c.Probes = 5
	}
	if c.Relax == 0 {
		c.Relax = routing.RelaxBacktrack
	}
	return c
}

// Framework is a bootstrapped HFC service overlay.
type Framework struct {
	topo      *hfc.Topology
	caps      []svc.CapabilitySet
	states    []state.NodeState
	stateMsgs state.MessageStats
	relax     routing.RelaxMode
	landmarks []coords.Point
	// cache, when non-nil, memoizes RouteDetailed results; the framework's
	// states are immutable, so entries never need invalidating. Internally
	// synchronized; cached results are shared read-only values.
	cache *routing.RouteCache
	// engine, when non-nil (Config.ServeEngine), serves every route: it
	// owns its own state copy, cache, and provider indexes.
	engine *serve.Engine
	// routers caches one hierarchical router per destination proxy for the
	// engine-less path. Bootstrap's states and views are immutable, and
	// HierarchicalRouter is read-only during Route, so a router built once
	// serves every later request to the same destination — the per-request
	// O(K² + |C|) view copy and solver construction disappear from the hot
	// path. Slots fill lazily; concurrent first requests may build twice and
	// either result wins the store (both are identical).
	routers []atomic.Pointer[routing.HierarchicalRouter]
	// indexes and solver are shared by every cached router: one lazy
	// inverted-provider-index cache (version pinned at 0 — static states)
	// and one intra-cluster solver reading it.
	indexes *routing.LazyIndexes
	solver  *routing.LocalIntraSolver
}

// Bootstrap builds the framework. m is the measurement substrate (the
// physical network); landmarks and proxies are its node IDs — landmarks
// serve only as GNP reference points and do not join the overlay. caps[i]
// is the service deployment of proxies[i]. All randomness flows from rng.
func Bootstrap(rng *rand.Rand, m coords.Measurer, landmarks, proxies []int, caps []svc.CapabilitySet, cfg Config) (*Framework, error) {
	if rng == nil {
		return nil, errors.New("core: nil rng")
	}
	if len(caps) != len(proxies) {
		return nil, fmt.Errorf("core: %d capability sets for %d proxies", len(caps), len(proxies))
	}
	cfg = cfg.withDefaults()

	cmap, lmPoints, err := coords.BuildMapWorkers(rng, m, landmarks, proxies, cfg.CoordDim, cfg.Probes, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: distance map: %w", err)
	}
	// Clustering runs on the geo engine (cfg.Cluster.Points) by default, so
	// no O(n²) matrix is ever materialized; DenseMatrix restores the eager
	// matrix for callers that want clustering's residual brute distance
	// evaluations served from memory. Both paths read the exact values
	// cmap.Dist returns, so the clustering is unchanged either way.
	dist := cmap.Dist
	if cfg.DenseMatrix {
		matrix := cmap.DistMatrix(cfg.Workers)
		dist = func(i, j int) float64 { return matrix[i][j] }
	}
	clusterCfg := cfg.Cluster
	if clusterCfg.Points == nil {
		clusterCfg.Points = cmap.Points
	}
	clustering, err := cluster.Cluster(cmap.N(), dist, clusterCfg)
	if err != nil {
		return nil, fmt.Errorf("core: clustering: %w", err)
	}
	topo, err := hfc.BuildParallel(cmap, clustering, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: hfc topology: %w", err)
	}
	states, msgs, err := state.Distribute(topo, caps)
	if err != nil {
		return nil, fmt.Errorf("core: state distribution: %w", err)
	}
	capsCopy := make([]svc.CapabilitySet, len(caps))
	for i, c := range caps {
		capsCopy[i] = c.Clone()
	}
	var cache *routing.RouteCache
	if cfg.CacheRoutes {
		cache = routing.NewRouteCache()
	}
	fw := &Framework{
		topo:      topo,
		caps:      capsCopy,
		states:    states,
		stateMsgs: msgs,
		relax:     cfg.Relax,
		landmarks: lmPoints,
		cache:     cache,
	}
	fw.routers = make([]atomic.Pointer[routing.HierarchicalRouter], topo.N())
	fw.indexes = routing.NewLazyIndexes(states, func(node int) []int {
		return topo.Members(topo.ClusterOf(node))
	}, nil)
	fw.solver = &routing.LocalIntraSolver{Topo: topo, States: states, Indexes: fw.indexes}
	if cfg.ServeEngine {
		eng, err := serve.NewEngine(topo, capsCopy, states, serve.Config{
			CacheShards: cfg.CacheShards,
			Relax:       cfg.Relax,
			Workers:     cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("core: serve engine: %w", err)
		}
		fw.engine = eng
	}
	return fw, nil
}

// Route answers a service request (overlay-index endpoints) with the
// hierarchical §5 procedure. With Config.CacheRoutes, repeated requests
// return the same shared (read-only) path from cache.
func (f *Framework) Route(req svc.Request) (*routing.Path, error) {
	res, err := f.RouteDetailed(req)
	if err != nil {
		return nil, err
	}
	return res.Path, nil
}

// RouteDetailed returns the full routing result, including the CSP and
// child requests (the Fig. 7 intermediate artifacts).
func (f *Framework) RouteDetailed(req svc.Request) (*routing.Result, error) {
	if f.engine != nil {
		return f.engine.ResolveDetailed(req)
	}
	if err := req.Validate(f.topo.N()); err != nil {
		return nil, err
	}
	var key routing.CacheKey
	var canonical string
	var version uint64
	if f.cache != nil {
		canonical = req.SG.Canonical()
		key = routing.NewCacheKeyCanonical(req.Source, req.Dest, canonical)
		if v, ok := f.cache.Get(key, canonical); ok {
			return v.(*routing.Result), nil
		}
		version = f.cache.Version()
	}
	r, err := f.routerFor(req.Dest)
	if err != nil {
		return nil, err
	}
	res, err := r.Route(req)
	if err == nil && f.cache != nil {
		f.cache.Put(key, canonical, res, nil, version)
	}
	return res, err
}

// routerFor returns the cached router for a destination proxy, building it
// on first use. req.Validate has already bounds-checked dest.
func (f *Framework) routerFor(dest int) (*routing.HierarchicalRouter, error) {
	if r := f.routers[dest].Load(); r != nil {
		return r, nil
	}
	view, err := f.topo.View(dest)
	if err != nil {
		return nil, err
	}
	r := &routing.HierarchicalRouter{
		View:            view,
		State:           &f.states[dest],
		Intra:           f.solver,
		ClusterOfSource: f.topo.ClusterOf,
		Mode:            f.relax,
		Index:           f.indexes.For(dest),
	}
	f.routers[dest].Store(r)
	return r, nil
}

// RouteCacheStats snapshots the route cache's counters; ok is false when
// caching is disabled.
func (f *Framework) RouteCacheStats() (stats routing.CacheStats, ok bool) {
	if f.engine != nil {
		return f.engine.Stats().Cache, true
	}
	if f.cache == nil {
		return routing.CacheStats{}, false
	}
	return f.cache.Stats(), true
}

// Engine returns the concurrent serving engine, or nil when
// Config.ServeEngine was off.
func (f *Framework) Engine() *serve.Engine { return f.engine }

// Topology exposes the constructed HFC topology.
func (f *Framework) Topology() *hfc.Topology { return f.topo }

// States exposes the converged per-proxy routing state.
func (f *Framework) States() []state.NodeState { return f.states }

// Capabilities returns the proxy service deployments the framework was
// built with.
func (f *Framework) Capabilities() []svc.CapabilitySet { return f.caps }

// StateMessageStats reports the traffic of the state-distribution round.
func (f *Framework) StateMessageStats() state.MessageStats { return f.stateMsgs }

// LandmarkCoords returns the embedded positions of the landmarks.
func (f *Framework) LandmarkCoords() []coords.Point { return f.landmarks }

// N returns the overlay size.
func (f *Framework) N() int { return f.topo.N() }

// NumClusters returns the detected cluster count.
func (f *Framework) NumClusters() int { return f.topo.NumClusters() }

// Validate re-checks the framework's structural invariants: the HFC
// topology's border properties and state convergence.
func (f *Framework) Validate() error {
	if err := f.topo.Validate(); err != nil {
		return err
	}
	return state.VerifyConvergence(f.topo, f.caps, f.states)
}
