// Package core assembles the paper's complete HFC service-routing
// middleware out of its substrates — the one-stop public API of this
// library. Bootstrap runs the full §3–§4 pipeline:
//
//  1. distance-map obtainment: landmark measurements + GNP coordinate
//     embedding (§3.1);
//  2. distance-based clustering with Zahn's MST method (§3.2);
//  3. HFC topology construction with closest-pair border selection (§3.3);
//  4. hierarchical state distribution: SCT_P / SCT_C convergence (§4).
//
// The resulting Framework answers service requests with the hierarchical
// divide-and-conquer routing of §5.
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"hfc/internal/cluster"
	"hfc/internal/coords"
	"hfc/internal/hfc"
	"hfc/internal/routing"
	"hfc/internal/state"
	"hfc/internal/svc"
)

// Config tunes framework construction. The zero value selects the paper's
// settings (2-D coordinates, 5 probes per measurement, MST clustering
// defaults, back-tracking cluster-level relaxation).
type Config struct {
	// CoordDim is the embedding dimension (§6.1 uses 2).
	CoordDim int
	// Probes is the number of delay probes per measurement, of which the
	// minimum is kept (§3.1).
	Probes int
	// Cluster configures the MST inconsistency detection.
	Cluster cluster.Config
	// Relax selects the cluster-level relaxation mode (§5.1 step 2).
	Relax routing.RelaxMode
}

func (c Config) withDefaults() Config {
	if c.CoordDim == 0 {
		c.CoordDim = 2
	}
	if c.Probes == 0 {
		c.Probes = 5
	}
	if c.Relax == 0 {
		c.Relax = routing.RelaxBacktrack
	}
	return c
}

// Framework is a bootstrapped HFC service overlay.
type Framework struct {
	topo      *hfc.Topology
	caps      []svc.CapabilitySet
	states    []state.NodeState
	stateMsgs state.MessageStats
	relax     routing.RelaxMode
	landmarks []coords.Point
}

// Bootstrap builds the framework. m is the measurement substrate (the
// physical network); landmarks and proxies are its node IDs — landmarks
// serve only as GNP reference points and do not join the overlay. caps[i]
// is the service deployment of proxies[i]. All randomness flows from rng.
func Bootstrap(rng *rand.Rand, m coords.Measurer, landmarks, proxies []int, caps []svc.CapabilitySet, cfg Config) (*Framework, error) {
	if rng == nil {
		return nil, errors.New("core: nil rng")
	}
	if len(caps) != len(proxies) {
		return nil, fmt.Errorf("core: %d capability sets for %d proxies", len(caps), len(proxies))
	}
	cfg = cfg.withDefaults()

	cmap, lmPoints, err := coords.BuildMap(rng, m, landmarks, proxies, cfg.CoordDim, cfg.Probes)
	if err != nil {
		return nil, fmt.Errorf("core: distance map: %w", err)
	}
	clustering, err := cluster.Cluster(cmap.N(), cmap.Dist, cfg.Cluster)
	if err != nil {
		return nil, fmt.Errorf("core: clustering: %w", err)
	}
	topo, err := hfc.Build(cmap, clustering)
	if err != nil {
		return nil, fmt.Errorf("core: hfc topology: %w", err)
	}
	states, msgs, err := state.Distribute(topo, caps)
	if err != nil {
		return nil, fmt.Errorf("core: state distribution: %w", err)
	}
	capsCopy := make([]svc.CapabilitySet, len(caps))
	for i, c := range caps {
		capsCopy[i] = c.Clone()
	}
	return &Framework{
		topo:      topo,
		caps:      capsCopy,
		states:    states,
		stateMsgs: msgs,
		relax:     cfg.Relax,
		landmarks: lmPoints,
	}, nil
}

// Route answers a service request (overlay-index endpoints) with the
// hierarchical §5 procedure.
func (f *Framework) Route(req svc.Request) (*routing.Path, error) {
	if err := req.Validate(f.topo.N()); err != nil {
		return nil, err
	}
	return routing.RouteHierarchical(f.topo, f.states, req, f.relax)
}

// RouteDetailed returns the full routing result, including the CSP and
// child requests (the Fig. 7 intermediate artifacts).
func (f *Framework) RouteDetailed(req svc.Request) (*routing.Result, error) {
	if err := req.Validate(f.topo.N()); err != nil {
		return nil, err
	}
	r, err := routing.NewHierarchicalRouter(f.topo, f.states, req.Dest, f.relax)
	if err != nil {
		return nil, err
	}
	return r.Route(req)
}

// Topology exposes the constructed HFC topology.
func (f *Framework) Topology() *hfc.Topology { return f.topo }

// States exposes the converged per-proxy routing state.
func (f *Framework) States() []state.NodeState { return f.states }

// Capabilities returns the proxy service deployments the framework was
// built with.
func (f *Framework) Capabilities() []svc.CapabilitySet { return f.caps }

// StateMessageStats reports the traffic of the state-distribution round.
func (f *Framework) StateMessageStats() state.MessageStats { return f.stateMsgs }

// LandmarkCoords returns the embedded positions of the landmarks.
func (f *Framework) LandmarkCoords() []coords.Point { return f.landmarks }

// N returns the overlay size.
func (f *Framework) N() int { return f.topo.N() }

// NumClusters returns the detected cluster count.
func (f *Framework) NumClusters() int { return f.topo.NumClusters() }

// Validate re-checks the framework's structural invariants: the HFC
// topology's border properties and state convergence.
func (f *Framework) Validate() error {
	if err := f.topo.Validate(); err != nil {
		return err
	}
	return state.VerifyConvergence(f.topo, f.caps, f.states)
}
