package graph

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// ErrDisconnected is returned by spanning-tree construction when the input
// graph (or point set) does not form a single connected component.
var ErrDisconnected = errors.New("graph: graph is disconnected")

// UnionFind is a disjoint-set forest with union by rank and path compression.
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind creates n singleton sets {0}, {1}, …, {n-1}.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), rank: make([]int, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false when they were already in the same set).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// MSTKruskal computes a minimum spanning tree of an undirected graph with
// Kruskal's algorithm. It returns ErrDisconnected (wrapped) when the graph
// has more than one component.
func (g *Graph) MSTKruskal() ([]Edge, error) {
	if g.directed {
		return nil, errors.New("graph: minimum spanning tree requires an undirected graph")
	}
	if g.n == 0 {
		return nil, errors.New("graph: minimum spanning tree of empty graph")
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		//hfcvet:ignore floatdist exact-tie fallback to endpoints keeps Kruskal deterministic
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight < edges[j].Weight
		}
		// Deterministic tie-break so repeated runs yield the same tree.
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	uf := NewUnionFind(g.n)
	tree := make([]Edge, 0, g.n-1)
	for _, e := range edges {
		if uf.Union(e.From, e.To) {
			tree = append(tree, e)
			if len(tree) == g.n-1 {
				break
			}
		}
	}
	if len(tree) != g.n-1 {
		return nil, fmt.Errorf("graph: kruskal found %d components: %w", uf.Sets(), ErrDisconnected)
	}
	return tree, nil
}

// mstItem is a priority-queue entry for Prim.
type mstItem struct {
	v    int
	from int
	w    float64
}

type mstQueue []mstItem

func (q mstQueue) Len() int            { return len(q) }
func (q mstQueue) Less(i, j int) bool  { return q[i].w < q[j].w }
func (q mstQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *mstQueue) Push(x interface{}) { *q = append(*q, x.(mstItem)) }
func (q *mstQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// MSTPrim computes a minimum spanning tree with Prim's algorithm starting
// from vertex 0. It returns ErrDisconnected (wrapped) when the graph has
// more than one component.
func (g *Graph) MSTPrim() ([]Edge, error) {
	if g.directed {
		return nil, errors.New("graph: minimum spanning tree requires an undirected graph")
	}
	if g.n == 0 {
		return nil, errors.New("graph: minimum spanning tree of empty graph")
	}
	inTree := make([]bool, g.n)
	pq := &mstQueue{{v: 0, from: -1, w: 0}}
	tree := make([]Edge, 0, g.n-1)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(mstItem)
		if inTree[it.v] {
			continue
		}
		inTree[it.v] = true
		if it.from != -1 {
			tree = append(tree, Edge{From: it.from, To: it.v, Weight: it.w})
		}
		for _, e := range g.adj[it.v] {
			if !inTree[e.to] {
				heap.Push(pq, mstItem{v: e.to, from: it.v, w: e.w})
			}
		}
	}
	if len(tree) != g.n-1 {
		return nil, fmt.Errorf("graph: prim reached %d of %d vertices: %w", len(tree)+1, g.n, ErrDisconnected)
	}
	return tree, nil
}

// EdgeLess is the canonical total order on oriented edges (From < To):
// ascending Weight, then From, then To. Exact weight ties fall back to the
// endpoint tuple, so sorting by EdgeLess is deterministic and — because a
// total order makes the minimum spanning tree unique — every MST algorithm
// honouring it (the dense Prim scan here, Kruskal, internal/geo's Borůvka
// rounds) produces the same edge set.
func EdgeLess(a, b Edge) bool {
	//hfcvet:ignore floatdist exact-weight ties fall back to the endpoint tuple for a deterministic order
	if a.Weight != b.Weight {
		return a.Weight < b.Weight
	}
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}

// CanonicalizeEdges rewrites an undirected edge list into canonical form
// in place: each edge oriented From < To, then sorted by EdgeLess. Two
// MSTs of the same point set under the tuple order canonicalize to deeply
// equal slices regardless of which algorithm built them.
func CanonicalizeEdges(edges []Edge) {
	for i, e := range edges {
		if e.From > e.To {
			edges[i].From, edges[i].To = e.To, e.From
		}
	}
	sort.Slice(edges, func(i, j int) bool { return EdgeLess(edges[i], edges[j]) })
}

// tupleLess reports whether candidate edge {u1, v1, w1} precedes
// {u2, v2, w2} under the unordered-endpoint form of the EdgeLess total
// order.
func tupleLess(w1 float64, u1, v1 int, w2 float64, u2, v2 int) bool {
	if u1 > v1 {
		u1, v1 = v1, u1
	}
	if u2 > v2 {
		u2, v2 = v2, u2
	}
	return EdgeLess(Edge{From: u1, To: v1, Weight: w1}, Edge{From: u2, To: v2, Weight: w2})
}

// EuclideanMST computes the minimum spanning tree of a complete graph over
// points whose pairwise distances are given by dist. It uses the dense
// O(n²) Prim variant, which is optimal for complete graphs, and returns the
// n-1 tree edges. dist must be symmetric and non-negative.
//
// All comparisons use the (weight, lo endpoint, hi endpoint) tuple order,
// under which the MST is unique: exact distance ties (duplicate or
// symmetric point sets) cannot make the result depend on scan order, and
// the indexed geo.MST produces the identical edge set.
func EuclideanMST(n int, dist func(i, j int) float64) ([]Edge, error) {
	if n <= 0 {
		return nil, errors.New("graph: euclidean mst of empty point set")
	}
	const unseen = -1
	inTree := make([]bool, n)
	best := make([]float64, n)
	bestFrom := make([]int, n)
	for i := range best {
		best[i] = dist(0, i)
		bestFrom[i] = 0
	}
	inTree[0] = true
	tree := make([]Edge, 0, n-1)
	for iter := 1; iter < n; iter++ {
		next := unseen
		for v := 0; v < n; v++ {
			if !inTree[v] && (next == unseen ||
				tupleLess(best[v], bestFrom[v], v, best[next], bestFrom[next], next)) {
				next = v
			}
		}
		if next == unseen {
			return nil, ErrDisconnected
		}
		inTree[next] = true
		tree = append(tree, Edge{From: bestFrom[next], To: next, Weight: best[next]})
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := dist(next, v); tupleLess(d, next, v, best[v], bestFrom[v], v) {
					best[v] = d
					bestFrom[v] = next
				}
			}
		}
	}
	return tree, nil
}
