// Package graph implements the weighted-graph machinery the HFC framework is
// built on: adjacency-list graphs, Dijkstra and all-pairs shortest paths,
// Prim and Kruskal minimum spanning trees, union-find, connected components,
// and shortest paths over directed acyclic graphs.
//
// Vertices are dense integer IDs in [0, N). All weights are float64 and must
// be non-negative for the shortest-path algorithms.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is a weighted edge between two vertices. In undirected graphs the
// (From, To) order is insignificant.
type Edge struct {
	From, To int
	Weight   float64
}

// Graph is a weighted graph stored as adjacency lists. The zero value is not
// usable; construct instances with New.
type Graph struct {
	n        int
	directed bool
	adj      [][]halfEdge
	numEdges int
}

// halfEdge is the adjacency-list record: the far endpoint and the weight.
type halfEdge struct {
	to int
	w  float64
}

// New creates a graph with n vertices and no edges. If directed is true,
// AddEdge inserts arcs; otherwise it inserts symmetric edges.
func New(n int, directed bool) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Graph{n: n, directed: directed, adj: make([][]halfEdge, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges (arcs for directed graphs).
func (g *Graph) M() int { return g.numEdges }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// AddEdge inserts an edge (or arc) from u to v with weight w. It returns an
// error if either endpoint is out of range or the weight is negative or NaN.
// Parallel edges are permitted; shortest-path algorithms simply consider all
// of them.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if math.IsNaN(w) || w < 0 {
		return fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", u, v, w)
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, w: w})
	if !g.directed {
		g.adj[v] = append(g.adj[v], halfEdge{to: u, w: w})
	}
	g.numEdges++
	return nil
}

// HasEdge reports whether at least one edge from u to v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n {
		return false
	}
	for _, e := range g.adj[u] {
		if e.to == v {
			return true
		}
	}
	return false
}

// Degree returns the number of adjacency entries at u (out-degree for
// directed graphs).
func (g *Graph) Degree(u int) int {
	if u < 0 || u >= g.n {
		return 0
	}
	return len(g.adj[u])
}

// Neighbors calls fn for every adjacency entry of u.
func (g *Graph) Neighbors(u int, fn func(v int, w float64)) {
	if u < 0 || u >= g.n {
		return
	}
	for _, e := range g.adj[u] {
		fn(e.to, e.w)
	}
}

// Edges returns every edge of the graph. For undirected graphs each edge is
// reported once with From < To.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			if g.directed || u < e.to {
				out = append(out, Edge{From: u, To: e.to, Weight: e.w})
			}
		}
	}
	return out
}

// Components returns the connected components of an undirected graph (weakly
// connected components for directed graphs, treating arcs as symmetric).
// Each component is a sorted slice of vertex IDs.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	// Build reverse reachability lazily for directed graphs by scanning a
	// symmetric view.
	sym := g
	if g.directed {
		sym = New(g.n, false)
		for u := 0; u < g.n; u++ {
			for _, e := range g.adj[u] {
				// Error impossible: endpoints and weights were validated
				// when the original edge was inserted.
				_ = sym.AddEdge(u, e.to, e.w)
			}
		}
	}
	var comps [][]int
	stack := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		stack = append(stack[:0], s)
		comp := []int{}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, e := range sym.adj[u] {
				if !seen[e.to] {
					seen[e.to] = true
					stack = append(stack, e.to)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Connected reports whether the graph has exactly one connected component
// (and at least one vertex).
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return false
	}
	return len(g.Components()) == 1
}
