package graph

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("Sets() = %d, want 5", uf.Sets())
	}
	if !uf.Union(0, 1) {
		t.Error("Union(0,1) = false on disjoint sets")
	}
	if uf.Union(1, 0) {
		t.Error("Union(1,0) = true on already-merged sets")
	}
	if uf.Find(0) != uf.Find(1) {
		t.Error("Find(0) != Find(1) after union")
	}
	if uf.Sets() != 4 {
		t.Errorf("Sets() = %d after one union, want 4", uf.Sets())
	}
}

func TestUnionFindTransitivityProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		uf := NewUnionFind(n)
		naive := make([]int, n) // naive labels, relabel on union
		for i := range naive {
			naive[i] = i
		}
		for op := 0; op < 3*n; op++ {
			a, b := rng.Intn(n), rng.Intn(n)
			uf.Union(a, b)
			la, lb := naive[a], naive[b]
			if la != lb {
				for i := range naive {
					if naive[i] == lb {
						naive[i] = la
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (uf.Find(i) == uf.Find(j)) != (naive[i] == naive[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func treeWeight(edges []Edge) float64 {
	sum := 0.0
	for _, e := range edges {
		sum += e.Weight
	}
	return sum
}

// assertSpanningTree verifies that edges form a spanning tree of an n-vertex
// graph: exactly n-1 edges, acyclic, connecting all vertices.
func assertSpanningTree(t *testing.T, n int, edges []Edge) {
	t.Helper()
	if len(edges) != n-1 {
		t.Fatalf("tree has %d edges, want %d", len(edges), n-1)
	}
	uf := NewUnionFind(n)
	for _, e := range edges {
		if !uf.Union(e.From, e.To) {
			t.Fatalf("edge (%d,%d) creates a cycle", e.From, e.To)
		}
	}
	if uf.Sets() != 1 {
		t.Fatalf("tree leaves %d components, want 1", uf.Sets())
	}
}

func TestMSTKruskalAndPrimAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		g := randomConnectedGraph(rng, n, n)
		k, err := g.MSTKruskal()
		if err != nil {
			t.Fatalf("trial %d: kruskal: %v", trial, err)
		}
		p, err := g.MSTPrim()
		if err != nil {
			t.Fatalf("trial %d: prim: %v", trial, err)
		}
		assertSpanningTree(t, n, k)
		assertSpanningTree(t, n, p)
		// With random float weights, MST weight is unique with prob. 1.
		if math.Abs(treeWeight(k)-treeWeight(p)) > 1e-9 {
			t.Fatalf("trial %d: kruskal weight %v != prim weight %v", trial, treeWeight(k), treeWeight(p))
		}
	}
}

func TestMSTKnownAnswer(t *testing.T) {
	// Classic 4-cycle with one diagonal.
	g := New(4, false)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 2)
	mustAdd(t, g, 2, 3, 3)
	mustAdd(t, g, 3, 0, 4)
	mustAdd(t, g, 0, 2, 5)
	tree, err := g.MSTKruskal()
	if err != nil {
		t.Fatalf("kruskal: %v", err)
	}
	if w := treeWeight(tree); w != 6 {
		t.Errorf("MST weight = %v, want 6", w)
	}
}

func TestMSTDisconnected(t *testing.T) {
	g := New(4, false)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 2, 3, 1)
	if _, err := g.MSTKruskal(); !errors.Is(err, ErrDisconnected) {
		t.Errorf("kruskal error = %v, want ErrDisconnected", err)
	}
	if _, err := g.MSTPrim(); !errors.Is(err, ErrDisconnected) {
		t.Errorf("prim error = %v, want ErrDisconnected", err)
	}
}

func TestMSTRejectsDirected(t *testing.T) {
	g := New(2, true)
	mustAdd(t, g, 0, 1, 1)
	if _, err := g.MSTKruskal(); err == nil {
		t.Error("kruskal on directed graph succeeded")
	}
	if _, err := g.MSTPrim(); err == nil {
		t.Error("prim on directed graph succeeded")
	}
}

func TestMSTEmptyGraph(t *testing.T) {
	g := New(0, false)
	if _, err := g.MSTKruskal(); err == nil {
		t.Error("kruskal on empty graph succeeded")
	}
	if _, err := g.MSTPrim(); err == nil {
		t.Error("prim on empty graph succeeded")
	}
}

func TestMSTSingleVertex(t *testing.T) {
	g := New(1, false)
	tree, err := g.MSTKruskal()
	if err != nil {
		t.Fatalf("kruskal: %v", err)
	}
	if len(tree) != 0 {
		t.Errorf("single-vertex MST has %d edges, want 0", len(tree))
	}
}

func TestEuclideanMSTMatchesKruskal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		pts := make([][2]float64, n)
		for i := range pts {
			pts[i] = [2]float64{rng.Float64() * 100, rng.Float64() * 100}
		}
		dist := func(i, j int) float64 {
			dx := pts[i][0] - pts[j][0]
			dy := pts[i][1] - pts[j][1]
			return math.Hypot(dx, dy)
		}
		tree, err := EuclideanMST(n, dist)
		if err != nil {
			t.Fatalf("trial %d: EuclideanMST: %v", trial, err)
		}
		assertSpanningTree(t, n, tree)
		// Cross-check weight against Kruskal on the explicit complete graph.
		g := New(n, false)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				mustAdd(t, g, i, j, dist(i, j))
			}
		}
		want, err := g.MSTKruskal()
		if err != nil {
			t.Fatalf("trial %d: kruskal: %v", trial, err)
		}
		if math.Abs(treeWeight(tree)-treeWeight(want)) > 1e-9 {
			t.Fatalf("trial %d: euclidean MST weight %v != kruskal %v", trial, treeWeight(tree), treeWeight(want))
		}
	}
}

func TestEuclideanMSTEmpty(t *testing.T) {
	if _, err := EuclideanMST(0, func(i, j int) float64 { return 0 }); err == nil {
		t.Error("EuclideanMST(0) succeeded")
	}
}

func TestEuclideanMSTCutProperty(t *testing.T) {
	// MST cut property: for every tree edge, removing it splits the vertices
	// into two sides, and the edge must be a minimum-weight crossing edge.
	rng := rand.New(rand.NewSource(23))
	n := 25
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	dist := func(i, j int) float64 {
		return math.Hypot(pts[i][0]-pts[j][0], pts[i][1]-pts[j][1])
	}
	tree, err := EuclideanMST(n, dist)
	if err != nil {
		t.Fatalf("EuclideanMST: %v", err)
	}
	for cut := range tree {
		uf := NewUnionFind(n)
		for i, e := range tree {
			if i != cut {
				uf.Union(e.From, e.To)
			}
		}
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if uf.Find(i) != uf.Find(j) {
					if d := dist(i, j); d < best {
						best = d
					}
				}
			}
		}
		if tree[cut].Weight > best+1e-9 {
			t.Fatalf("tree edge %v weight %v exceeds min cut weight %v", tree[cut], tree[cut].Weight, best)
		}
	}
}

func TestEuclideanMSTCanonicalEdgeSet(t *testing.T) {
	// Under the (weight, lo, hi) tuple order the MST is unique, so the dense
	// Prim scan and Kruskal must agree on the exact edge set — including on
	// tie-heavy integer lattices with duplicated points, where a weight-only
	// comparison would leave the tree scan-order dependent.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		pts := make([][2]float64, n)
		for i := range pts {
			pts[i] = [2]float64{float64(rng.Intn(5)), float64(rng.Intn(5))}
		}
		dist := func(i, j int) float64 {
			dx := pts[i][0] - pts[j][0]
			dy := pts[i][1] - pts[j][1]
			return math.Hypot(dx, dy)
		}
		tree, err := EuclideanMST(n, dist)
		if err != nil {
			t.Fatalf("trial %d: EuclideanMST: %v", trial, err)
		}
		g := New(n, false)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				mustAdd(t, g, i, j, dist(i, j))
			}
		}
		want, err := g.MSTKruskal()
		if err != nil {
			t.Fatalf("trial %d: kruskal: %v", trial, err)
		}
		CanonicalizeEdges(tree)
		CanonicalizeEdges(want)
		if !reflect.DeepEqual(tree, want) {
			t.Fatalf("trial %d (n=%d): canonical edge sets differ\n prim    %v\n kruskal %v", trial, n, tree, want)
		}
	}
}

func TestCanonicalizeEdges(t *testing.T) {
	edges := []Edge{
		{From: 5, To: 2, Weight: 1},
		{From: 1, To: 3, Weight: 1},
		{From: 0, To: 4, Weight: 0.5},
	}
	CanonicalizeEdges(edges)
	want := []Edge{
		{From: 0, To: 4, Weight: 0.5},
		{From: 1, To: 3, Weight: 1},
		{From: 2, To: 5, Weight: 1},
	}
	if !reflect.DeepEqual(edges, want) {
		t.Fatalf("CanonicalizeEdges = %v, want %v", edges, want)
	}
	if !EdgeLess(want[0], want[1]) || EdgeLess(want[2], want[1]) {
		t.Fatal("EdgeLess violates the (weight, from, to) order")
	}
}
