package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randomGraph builds a random weighted graph from a seed: size, direction,
// density, and weights (including exact-tie-prone small integer weights on
// odd seeds, to exercise equal-distance tie-breaking).
func randomGraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(40)
	directed := rng.Intn(2) == 0
	g := New(n, directed)
	m := rng.Intn(4 * n)
	integerWeights := seed%2 == 1
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		var w float64
		if integerWeights {
			w = float64(rng.Intn(4)) // exact ties abound
		} else {
			w = rng.Float64() * 10
		}
		if err := g.AddEdge(u, v, w); err != nil {
			panic(err)
		}
	}
	return g
}

// referenceDijkstra is a selection-based (no heap) Dijkstra with the
// canonical settle order: among unsettled vertices, smallest (dist, id)
// first, strict-< relaxation. It is the specification both the CSR radix
// heap and the parent tie-break contract are tested against.
func referenceDijkstra(g *Graph, source int) ([]float64, []int) {
	n := g.N()
	dist := make([]float64, n)
	parent := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[source] = 0
	for {
		v := -1
		for u := 0; u < n; u++ {
			if done[u] || math.IsInf(dist[u], 1) {
				continue
			}
			if v == -1 || dist[u] < dist[v] {
				v = u
			}
		}
		if v == -1 {
			return dist, parent
		}
		done[v] = true
		g.Neighbors(v, func(u int, w float64) {
			if nd := dist[v] + w; nd < dist[u] {
				dist[u] = nd
				parent[u] = v
			}
		})
	}
}

// TestCSRMirrorsGraph asserts the conversion is bit-identical: same vertex
// count, same adjacency sequences (targets and weights) in the same order.
func TestCSRMirrorsGraph(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g := randomGraph(seed)
		c, err := NewCSR(g)
		if err != nil {
			t.Fatalf("seed %d: NewCSR: %v", seed, err)
		}
		if c.N() != g.N() {
			t.Fatalf("seed %d: CSR has %d vertices, graph has %d", seed, c.N(), g.N())
		}
		entries := 0
		for u := 0; u < g.N(); u++ {
			entries += g.Degree(u)
		}
		if c.M() != entries {
			t.Fatalf("seed %d: CSR has %d entries, graph has %d", seed, c.M(), entries)
		}
		for u := 0; u < g.N(); u++ {
			if c.Degree(u) != g.Degree(u) {
				t.Fatalf("seed %d: degree(%d): CSR %d, graph %d", seed, u, c.Degree(u), g.Degree(u))
			}
			var gt []int
			var gw []float64
			g.Neighbors(u, func(v int, w float64) { gt, gw = append(gt, v), append(gw, w) })
			i := 0
			c.Neighbors(u, func(v int, w float64) {
				if v != gt[i] || math.Float64bits(w) != math.Float64bits(gw[i]) {
					t.Fatalf("seed %d: adjacency %d[%d]: CSR (%d,%v), graph (%d,%v)",
						seed, u, i, v, w, gt[i], gw[i])
				}
				i++
			})
		}
	}
}

// checkCSRAgainstGraph runs the three Dijkstra implementations from one
// source and cross-checks them: distances bit-identical across all three,
// parents identical between CSR and the canonical reference, and every
// CSR shortest-path tree edge consistent (dist[v] == dist[parent] + w for
// some edge parent→v).
func checkCSRAgainstGraph(t *testing.T, g *Graph, c *CSR, sc *CSRScratch, source int) {
	t.Helper()
	heapRes, err := g.Dijkstra(source)
	if err != nil {
		t.Fatalf("heap dijkstra(%d): %v", source, err)
	}
	if err := c.DijkstraInto(source, sc); err != nil {
		t.Fatalf("csr dijkstra(%d): %v", source, err)
	}
	refDist, refParent := referenceDijkstra(g, source)
	for v := 0; v < g.N(); v++ {
		db := math.Float64bits(sc.Dist()[v])
		if db != math.Float64bits(heapRes.Dist[v]) {
			t.Fatalf("source %d: dist[%d]: csr %v, heap %v (must be bit-identical)",
				source, v, sc.Dist()[v], heapRes.Dist[v])
		}
		if db != math.Float64bits(refDist[v]) {
			t.Fatalf("source %d: dist[%d]: csr %v, reference %v", source, v, sc.Dist()[v], refDist[v])
		}
		if sc.Parent(v) != refParent[v] {
			t.Fatalf("source %d: parent[%d]: csr %d, canonical reference %d",
				source, v, sc.Parent(v), refParent[v])
		}
		if p := sc.Parent(v); p != -1 {
			found := false
			g.Neighbors(p, func(u int, w float64) {
				//hfcvet:ignore floatdist parent edges must witness the distance exactly, not approximately
				if u == v && sc.Dist()[v] == sc.Dist()[p]+w {
					found = true
				}
			})
			if !found {
				t.Fatalf("source %d: parent edge %d->%d does not witness dist %v",
					source, p, v, sc.Dist()[v])
			}
		}
	}
}

// TestCSRDijkstraMatchesPointerGraph is the 200-seed property test: the
// radix-heap CSR Dijkstra agrees bit-for-bit with the binary-heap
// pointer-graph Dijkstra on distances, and with the canonical (dist, id)
// reference on parents, across random graphs with and without exact ties.
func TestCSRDijkstraMatchesPointerGraph(t *testing.T) {
	sc := NewCSRScratch() // reused across all runs: exercises scratch reset
	for seed := int64(0); seed < 200; seed++ {
		g := randomGraph(seed)
		c, err := NewCSR(g)
		if err != nil {
			t.Fatalf("seed %d: NewCSR: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for trial := 0; trial < 3; trial++ {
			checkCSRAgainstGraph(t, g, c, sc, rng.Intn(g.N()))
		}
	}
}

// TestCSRDijkstraPathsMatch walks full path reconstructions: for every
// reachable target the CSR parent chain is a valid path whose hop-summed
// length telescopes to the reported distance.
func TestCSRDijkstraPathsMatch(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := randomGraph(seed)
		c, err := NewCSR(g)
		if err != nil {
			t.Fatalf("seed %d: NewCSR: %v", seed, err)
		}
		res, err := c.Dijkstra(0)
		if err != nil {
			t.Fatalf("seed %d: csr dijkstra: %v", seed, err)
		}
		for v := 0; v < g.N(); v++ {
			if math.IsInf(res.Dist[v], 1) {
				if _, err := res.PathTo(v); err == nil {
					t.Fatalf("seed %d: expected no path to unreachable %d", seed, v)
				}
				continue
			}
			path, err := res.PathTo(v)
			if err != nil {
				t.Fatalf("seed %d: PathTo(%d): %v", seed, v, err)
			}
			if path[0] != 0 || path[len(path)-1] != v {
				t.Fatalf("seed %d: path to %d has endpoints %d..%d", seed, v, path[0], path[len(path)-1])
			}
			for i := 0; i+1 < len(path); i++ {
				if !g.HasEdge(path[i], path[i+1]) {
					t.Fatalf("seed %d: path hop %d->%d is not an edge", seed, path[i], path[i+1])
				}
			}
		}
	}
}

// TestCSRDijkstraOutOfRange mirrors the pointer-graph API contract.
func TestCSRDijkstraOutOfRange(t *testing.T) {
	g := New(3, false)
	c, err := NewCSR(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{-1, 3} {
		if err := c.DijkstraInto(s, NewCSRScratch()); err == nil {
			t.Fatalf("expected error for source %d", s)
		}
		if _, err := c.Dijkstra(s); err == nil {
			t.Fatalf("expected error for source %d", s)
		}
	}
}

// TestCSRDijkstraSteadyStateAllocs pins the zero-allocation contract: a
// warmed scratch runs DijkstraInto without allocating.
func TestCSRDijkstraSteadyStateAllocs(t *testing.T) {
	g := randomGraph(7)
	c, err := NewCSR(g)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewCSRScratch()
	if err := c.DijkstraInto(0, sc); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.DijkstraInto(0, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed DijkstraInto allocates %.1f/run, want 0", allocs)
	}
}

// FuzzCSRDijkstra feeds arbitrary byte strings through a deterministic
// graph decoder and cross-checks the CSR radix-heap Dijkstra against both
// the binary-heap and the canonical reference implementation.
func FuzzCSRDijkstra(f *testing.F) {
	f.Add([]byte{}, int64(1))
	f.Add([]byte{0, 1, 2, 1, 2, 4, 0, 2, 8}, int64(2))
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, int64(3))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 255, 128, 64, 32}, int64(4))
	f.Add([]byte{0, 0, 0, 0, 0, 0}, int64(-9))
	f.Fuzz(func(t *testing.T, data []byte, dirSeed int64) {
		// Decode: n from the first byte, then (u, v, w) triples. Weights
		// are small integers scaled down — exact ties are common, which
		// is precisely the regime where tie-breaking must stay canonical.
		n := 1 + int(func() byte {
			if len(data) == 0 {
				return 0
			}
			return data[0]
		}())%32
		g := New(n, dirSeed%2 == 0)
		for i := 1; i+2 < len(data); i += 3 {
			u, v := int(data[i])%n, int(data[i+1])%n
			w := float64(data[i+2]%16) / 4
			if err := g.AddEdge(u, v, w); err != nil {
				t.Fatalf("AddEdge(%d,%d,%v): %v", u, v, w, err)
			}
		}
		c, err := NewCSR(g)
		if err != nil {
			t.Fatalf("NewCSR: %v", err)
		}
		sc := NewCSRScratch()
		checkCSRAgainstGraph(t, g, c, sc, 0)
		if n > 1 {
			checkCSRAgainstGraph(t, g, c, sc, n-1)
		}
	})
}
