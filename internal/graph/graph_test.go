package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, g *Graph, u, v int, w float64) {
	t.Helper()
	if err := g.AddEdge(u, v, w); err != nil {
		t.Fatalf("AddEdge(%d,%d,%v): %v", u, v, w, err)
	}
}

func TestNewPanicsOnNegativeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, false) did not panic")
		}
	}()
	New(-1, false)
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3, false)
	cases := []struct {
		u, v int
		w    float64
	}{
		{-1, 0, 1},
		{0, 3, 1},
		{3, 0, 1},
		{0, 1, -0.5},
		{0, 1, math.NaN()},
	}
	for _, c := range cases {
		if err := g.AddEdge(c.u, c.v, c.w); err == nil {
			t.Errorf("AddEdge(%d,%d,%v) succeeded, want error", c.u, c.v, c.w)
		}
	}
	if g.M() != 0 {
		t.Errorf("M() = %d after failed inserts, want 0", g.M())
	}
}

func TestUndirectedEdgeSymmetry(t *testing.T) {
	g := New(4, false)
	mustAdd(t, g, 0, 1, 2.5)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected edge not visible from both endpoints")
	}
	if g.M() != 1 {
		t.Errorf("M() = %d, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Errorf("degrees = %d,%d, want 1,1", g.Degree(0), g.Degree(1))
	}
}

func TestDirectedEdgeAsymmetry(t *testing.T) {
	g := New(4, true)
	mustAdd(t, g, 0, 1, 2.5)
	if !g.HasEdge(0, 1) {
		t.Error("arc 0->1 missing")
	}
	if g.HasEdge(1, 0) {
		t.Error("arc 1->0 present in directed graph")
	}
}

func TestEdgesReportedOnce(t *testing.T) {
	g := New(3, false)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 2)
	mustAdd(t, g, 2, 0, 3)
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("Edges() returned %d edges, want 3", len(edges))
	}
	for _, e := range edges {
		if e.From >= e.To {
			t.Errorf("undirected edge (%d,%d) not normalized From<To", e.From, e.To)
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(6, false)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 3, 4, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components() = %d components, want 3", len(comps))
	}
	want := [][]int{{0, 1, 2}, {3, 4}, {5}}
	for i, c := range comps {
		if len(c) != len(want[i]) {
			t.Errorf("component %d = %v, want %v", i, c, want[i])
			continue
		}
		for j := range c {
			if c[j] != want[i][j] {
				t.Errorf("component %d = %v, want %v", i, c, want[i])
				break
			}
		}
	}
	if g.Connected() {
		t.Error("Connected() = true for 3-component graph")
	}
}

func TestComponentsDirectedUsesWeakConnectivity(t *testing.T) {
	g := New(3, true)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 2, 1, 1)
	if got := len(g.Components()); got != 1 {
		t.Errorf("weak components = %d, want 1", got)
	}
}

func TestConnectedEmptyGraph(t *testing.T) {
	if New(0, false).Connected() {
		t.Error("Connected() = true for empty graph")
	}
}

func TestDijkstraSimple(t *testing.T) {
	// 0 --1-- 1 --1-- 2, plus a heavy shortcut 0 --5-- 2.
	g := New(3, false)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 0, 2, 5)
	r, err := g.Dijkstra(0)
	if err != nil {
		t.Fatalf("Dijkstra: %v", err)
	}
	if r.Dist[2] != 2 {
		t.Errorf("Dist[2] = %v, want 2", r.Dist[2])
	}
	path, err := r.PathTo(2)
	if err != nil {
		t.Fatalf("PathTo(2): %v", err)
	}
	want := []int{0, 1, 2}
	if len(path) != 3 || path[0] != want[0] || path[1] != want[1] || path[2] != want[2] {
		t.Errorf("PathTo(2) = %v, want %v", path, want)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3, false)
	mustAdd(t, g, 0, 1, 1)
	r, err := g.Dijkstra(0)
	if err != nil {
		t.Fatalf("Dijkstra: %v", err)
	}
	if !math.IsInf(r.Dist[2], 1) {
		t.Errorf("Dist[2] = %v, want +Inf", r.Dist[2])
	}
	if _, err := r.PathTo(2); !errors.Is(err, ErrNoPath) {
		t.Errorf("PathTo(2) error = %v, want ErrNoPath", err)
	}
}

func TestDijkstraSourceOutOfRange(t *testing.T) {
	g := New(2, false)
	if _, err := g.Dijkstra(7); err == nil {
		t.Error("Dijkstra(7) on 2-vertex graph succeeded")
	}
}

func TestPathToOutOfRange(t *testing.T) {
	g := New(2, false)
	mustAdd(t, g, 0, 1, 1)
	r, _ := g.Dijkstra(0)
	if _, err := r.PathTo(9); err == nil {
		t.Error("PathTo(9) succeeded on 2-vertex result")
	}
}

// randomConnectedGraph builds a connected undirected graph: a random spanning
// tree plus extra random edges.
func randomConnectedGraph(rng *rand.Rand, n, extra int) *Graph {
	g := New(n, false)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := perm[rng.Intn(i)]
		v := perm[i]
		if err := g.AddEdge(u, v, 1+rng.Float64()*9); err != nil {
			panic(err)
		}
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if err := g.AddEdge(u, v, 1+rng.Float64()*9); err != nil {
			panic(err)
		}
	}
	return g
}

// floydWarshall is an independent APSP oracle used to cross-check Dijkstra.
func floydWarshall(g *Graph) [][]float64 {
	n := g.N()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for _, e := range g.Edges() {
		if e.Weight < d[e.From][e.To] {
			d[e.From][e.To] = e.Weight
			d[e.To][e.From] = e.Weight
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if nd := d[i][k] + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		g := randomConnectedGraph(rng, n, n)
		want := floydWarshall(g)
		apsp, err := g.AllPairsShortestPaths()
		if err != nil {
			t.Fatalf("trial %d: APSP: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(apsp.Dist(i, j)-want[i][j]) > 1e-9 {
					t.Fatalf("trial %d: dist(%d,%d) = %v, want %v", trial, i, j, apsp.Dist(i, j), want[i][j])
				}
			}
		}
	}
}

func TestAPSPSymmetricForUndirected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnectedGraph(rng, 25, 30)
	apsp, err := g.AllPairsShortestPaths()
	if err != nil {
		t.Fatalf("APSP: %v", err)
	}
	for i := 0; i < g.N(); i++ {
		if apsp.Dist(i, i) != 0 {
			t.Errorf("Dist(%d,%d) = %v, want 0", i, i, apsp.Dist(i, i))
		}
		for j := 0; j < g.N(); j++ {
			if math.Abs(apsp.Dist(i, j)-apsp.Dist(j, i)) > 1e-9 {
				t.Errorf("Dist(%d,%d) = %v but Dist(%d,%d) = %v", i, j, apsp.Dist(i, j), j, i, apsp.Dist(j, i))
			}
		}
	}
}

func TestDijkstraTriangleInequalityProperty(t *testing.T) {
	// Shortest-path distances always satisfy the triangle inequality.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := randomConnectedGraph(rng, n, n/2)
		apsp, err := g.AllPairsShortestPaths()
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if apsp.Dist(i, j) > apsp.Dist(i, k)+apsp.Dist(k, j)+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestTopoSortRequiresDirected(t *testing.T) {
	g := New(2, false)
	if _, err := g.TopoSort(); err == nil {
		t.Error("TopoSort on undirected graph succeeded")
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New(3, true)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 2, 0, 1)
	if _, err := g.TopoSort(); err == nil {
		t.Error("TopoSort on cyclic graph succeeded")
	}
}

func TestTopoSortOrder(t *testing.T) {
	g := New(4, true)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 0, 2, 1)
	mustAdd(t, g, 1, 3, 1)
	mustAdd(t, g, 2, 3, 1)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge (%d,%d) violates topological order %v", e.From, e.To, order)
		}
	}
}

func TestDAGShortestPathsMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		g := New(n, true)
		// Random DAG: edges only go from lower to higher index.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					mustAdd(t, g, u, v, rng.Float64()*10)
				}
			}
		}
		want, err := g.Dijkstra(0)
		if err != nil {
			t.Fatalf("Dijkstra: %v", err)
		}
		got, err := g.DAGShortestPaths(0)
		if err != nil {
			t.Fatalf("DAGShortestPaths: %v", err)
		}
		for v := 0; v < n; v++ {
			wd, gd := want.Dist[v], got.Dist[v]
			if math.IsInf(wd, 1) != math.IsInf(gd, 1) || (!math.IsInf(wd, 1) && math.Abs(wd-gd) > 1e-9) {
				t.Fatalf("trial %d: dist[%d] = %v, want %v", trial, v, gd, wd)
			}
		}
	}
}

func TestDAGShortestPathsSourceOutOfRange(t *testing.T) {
	g := New(2, true)
	if _, err := g.DAGShortestPaths(-1); err == nil {
		t.Error("DAGShortestPaths(-1) succeeded")
	}
}
