package graph

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"hfc/internal/par"
)

// ErrNoPath is returned when no path exists between the requested endpoints.
var ErrNoPath = errors.New("graph: no path between endpoints")

// PathResult holds single-source shortest-path output. Dist[v] is +Inf and
// Parent[v] is -1 for unreachable vertices; Parent[source] is -1.
type PathResult struct {
	Source int
	Dist   []float64
	Parent []int
}

// PathTo reconstructs the vertex sequence from the result's source to v.
// It returns ErrNoPath if v is unreachable.
func (r *PathResult) PathTo(v int) ([]int, error) {
	if v < 0 || v >= len(r.Dist) {
		return nil, fmt.Errorf("graph: vertex %d out of range [0,%d)", v, len(r.Dist))
	}
	if math.IsInf(r.Dist[v], 1) {
		return nil, fmt.Errorf("graph: vertex %d unreachable from %d: %w", v, r.Source, ErrNoPath)
	}
	var rev []int
	for u := v; u != -1; u = r.Parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	v    int
	dist float64
}

// priorityQueue is a concrete binary min-heap of pqItems — the same sift
// rules as container/heap (including which child wins on equal keys), but
// monomorphic: no interface{} boxing, no allocation per push. Keeping the
// comparison and swap order identical to container/heap preserves the
// exact pop sequence for equal-distance entries, so Dijkstra's Parent
// tie-breaks are unchanged from the old boxed implementation.
type priorityQueue []pqItem

func (q *priorityQueue) push(it pqItem) {
	*q = append(*q, it)
	q.up(len(*q) - 1)
}

func (q *priorityQueue) pop() pqItem {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	q.down(0, n)
	it := h[n]
	*q = h[:n]
	return it
}

func (q *priorityQueue) up(j int) {
	h := *q
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (q *priorityQueue) down(i0, n int) {
	h := *q
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2 // = 2*i + 2  // right child
		}
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// Dijkstra computes shortest paths from source to every vertex using a
// binary heap (lazy deletion). It returns an error if source is out of range.
func (g *Graph) Dijkstra(source int) (*PathResult, error) {
	if source < 0 || source >= g.n {
		return nil, fmt.Errorf("graph: source %d out of range [0,%d)", source, g.n)
	}
	dist := make([]float64, g.n)
	parent := make([]int, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[source] = 0
	pq := &priorityQueue{{v: source, dist: 0}}
	for len(*pq) > 0 {
		it := pq.pop()
		if done[it.v] {
			continue
		}
		done[it.v] = true
		for _, e := range g.adj[it.v] {
			if nd := it.dist + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				parent[e.to] = it.v
				pq.push(pqItem{v: e.to, dist: nd})
			}
		}
	}
	return &PathResult{Source: source, Dist: dist, Parent: parent}, nil
}

// APSP holds an all-pairs shortest-path distance matrix.
type APSP struct {
	n    int
	dist [][]float64
}

// AllPairsShortestPaths runs Dijkstra from every vertex and collects the
// distance matrix. For the graph sizes in this simulator (≤ a few thousand
// vertices) this is faster in practice than Floyd–Warshall on sparse graphs.
func (g *Graph) AllPairsShortestPaths() (*APSP, error) {
	return g.AllPairsShortestPathsWorkers(1)
}

// AllPairsShortestPathsWorkers is AllPairsShortestPaths with the
// per-source Dijkstra runs fanned out across a bounded worker pool.
// Each source's run only reads the (immutable) CSR arrays and writes its
// own distance row, so the matrix is bit-identical to the serial loop for
// any worker count. The runs go through the radix-heap CSR Dijkstra —
// distances are bit-identical to the pointer-graph implementation (see
// DijkstraInto) and only distance rows are kept, so the output matches
// the old per-source (*Graph).Dijkstra loop exactly while the per-source
// cost drops (one flat adjacency scan, pooled scratch, no boxing).
func (g *Graph) AllPairsShortestPathsWorkers(workers int) (*APSP, error) {
	c, err := NewCSR(g)
	if err != nil {
		return nil, fmt.Errorf("graph: apsp: %w", err)
	}
	var pool sync.Pool // of *CSRScratch, one per active worker
	dist := make([][]float64, g.n)
	if err := par.ForErr(g.n, workers, func(s int) error {
		sc, _ := pool.Get().(*CSRScratch)
		if sc == nil {
			sc = NewCSRScratch()
		}
		if err := c.DijkstraInto(s, sc); err != nil {
			return fmt.Errorf("graph: apsp from %d: %w", s, err)
		}
		dist[s] = append([]float64(nil), sc.Dist()...)
		pool.Put(sc)
		return nil
	}); err != nil {
		return nil, err
	}
	return &APSP{n: g.n, dist: dist}, nil
}

// N returns the number of vertices the matrix covers.
func (m *APSP) N() int { return m.n }

// Symmetrize forces Dist(u,v) == Dist(v,u) by taking the minimum of the two
// directions. On undirected graphs the two values can differ by a few ULPs
// because Dijkstra accumulates edge weights in different orders; callers
// that treat distances as a metric (clustering, MST) need exact symmetry.
func (m *APSP) Symmetrize() {
	for u := 0; u < m.n; u++ {
		for v := u + 1; v < m.n; v++ {
			d := m.dist[u][v]
			if m.dist[v][u] < d {
				d = m.dist[v][u]
			}
			m.dist[u][v] = d
			m.dist[v][u] = d
		}
	}
}

// Dist returns the shortest-path distance from u to v (+Inf if unreachable).
func (m *APSP) Dist(u, v int) float64 { return m.dist[u][v] }

// TopoSort returns a topological ordering of a directed graph, or an error
// if the graph is undirected or contains a cycle.
func (g *Graph) TopoSort() ([]int, error) {
	if !g.directed {
		return nil, errors.New("graph: topological sort requires a directed graph")
	}
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			indeg[e.to]++
		}
	}
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, e := range g.adj[u] {
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	if len(order) != g.n {
		return nil, errors.New("graph: cycle detected during topological sort")
	}
	return order, nil
}

// DAGShortestPaths computes shortest paths from source in a directed acyclic
// graph by relaxing edges in topological order. It is the classical
// algorithm the paper applies on top of service DAGs.
func (g *Graph) DAGShortestPaths(source int) (*PathResult, error) {
	if source < 0 || source >= g.n {
		return nil, fmt.Errorf("graph: source %d out of range [0,%d)", source, g.n)
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	dist := make([]float64, g.n)
	parent := make([]int, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[source] = 0
	for _, u := range order {
		if math.IsInf(dist[u], 1) {
			continue
		}
		for _, e := range g.adj[u] {
			if nd := dist[u] + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				parent[e.to] = u
			}
		}
	}
	return &PathResult{Source: source, Dist: dist, Parent: parent}, nil
}
