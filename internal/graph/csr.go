package graph

import (
	"fmt"
	"math"
	"math/bits"
)

// CSR is a compressed-sparse-row mirror of a Graph: the adjacency lists
// flattened into three packed arrays with int32 vertex ids. off has n+1
// entries; the adjacency of vertex u is to[off[u]:off[u+1]] with matching
// weights in w, in exactly the order the pointer graph stores it (so any
// order-sensitive traversal sees the same edge sequence). A CSR is
// immutable after construction; build it once and share it freely across
// goroutines.
type CSR struct {
	n        int
	directed bool
	off      []int32
	to       []int32
	w        []float64
}

// NewCSR flattens g into CSR form. It fails only when the graph is too
// large for int32 indexing (over 2^31-1 vertices or adjacency entries) —
// far beyond the simulator's reach, but checked rather than truncated.
func NewCSR(g *Graph) (*CSR, error) {
	if g.n > math.MaxInt32 {
		return nil, fmt.Errorf("graph: %d vertices exceed int32 CSR indexing", g.n)
	}
	entries := 0
	for u := 0; u < g.n; u++ {
		entries += len(g.adj[u])
	}
	if entries > math.MaxInt32 {
		return nil, fmt.Errorf("graph: %d adjacency entries exceed int32 CSR indexing", entries)
	}
	c := &CSR{
		n:        g.n,
		directed: g.directed,
		off:      make([]int32, g.n+1),
		to:       make([]int32, entries),
		w:        make([]float64, entries),
	}
	pos := int32(0)
	for u := 0; u < g.n; u++ {
		c.off[u] = pos
		for _, e := range g.adj[u] {
			c.to[pos] = int32(e.to)
			c.w[pos] = e.w
			pos++
		}
	}
	c.off[g.n] = pos
	return c, nil
}

// N returns the number of vertices.
func (c *CSR) N() int { return c.n }

// M returns the number of adjacency entries (2x the edge count for
// undirected graphs).
func (c *CSR) M() int { return len(c.to) }

// Degree returns the number of adjacency entries at u (out-degree for
// directed graphs).
func (c *CSR) Degree(u int) int {
	if u < 0 || u >= c.n {
		return 0
	}
	return int(c.off[u+1] - c.off[u])
}

// Neighbors calls fn for every adjacency entry of u, in storage order.
func (c *CSR) Neighbors(u int, fn func(v int, w float64)) {
	if u < 0 || u >= c.n {
		return
	}
	for i := c.off[u]; i < c.off[u+1]; i++ {
		fn(int(c.to[i]), c.w[i])
	}
}

// radixItem is one entry of the monotone radix heap: the distance's bit
// pattern and the vertex it keys.
type radixItem struct {
	key uint64
	v   int32
}

// CSRScratch is the reusable state for CSR Dijkstra runs: distance/parent/
// settled arrays plus the radix-heap buckets. A scratch is not safe for
// concurrent use; give each worker its own (e.g. via sync.Pool) and reuse
// it across runs — after the first run at a given size, DijkstraInto
// performs no allocations.
type CSRScratch struct {
	dist   []float64
	parent []int32
	done   []bool
	// buckets is an Ahuja-style radix heap over the distances' IEEE-754
	// bit patterns: for non-negative floats, bit-pattern order equals
	// numeric order, so uint64 radix machinery applies unchanged. Bucket
	// index is the position of the highest bit in which a key differs
	// from lastMin (0 for equal keys), hence 65 buckets.
	buckets [65][]radixItem
	live    int
	lastMin uint64
}

// NewCSRScratch returns an empty scratch; it grows on first use.
func NewCSRScratch() *CSRScratch { return &CSRScratch{} }

// Dist returns the distance row of the last DijkstraInto run. The slice
// aliases the scratch; it is valid until the next run.
func (s *CSRScratch) Dist() []float64 { return s.dist }

// Parent returns v's shortest-path-tree parent from the last run (-1 for
// the source and unreachable vertices).
func (s *CSRScratch) Parent(v int) int { return int(s.parent[v]) }

// reset sizes the arrays for n vertices and clears them.
func (s *CSRScratch) reset(n int) {
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.parent = make([]int32, n)
		s.done = make([]bool, n)
	}
	s.dist = s.dist[:n]
	s.parent = s.parent[:n]
	s.done = s.done[:n]
	inf := math.Inf(1)
	for i := range s.dist {
		s.dist[i] = inf
		s.parent[i] = -1
		s.done[i] = false
	}
	for i := range s.buckets {
		s.buckets[i] = s.buckets[i][:0]
	}
	s.live = 0
	s.lastMin = 0
}

// bucketFor places a key relative to lastMin: equal keys land in bucket 0,
// otherwise the index of the highest differing bit plus one.
func (s *CSRScratch) bucketFor(key uint64) int {
	return bits.Len64(key ^ s.lastMin)
}

// push inserts a (key, vertex) entry.
//
//hfc:hotpath budget=0
func (s *CSRScratch) push(key uint64, v int32) {
	b := s.bucketFor(key)
	//hfcvet:ignore hotalloc bucket slices retain capacity across runs; steady-state append never grows
	s.buckets[b] = append(s.buckets[b], radixItem{key: key, v: v})
	s.live++
}

// pop removes and returns the minimum live entry under the canonical
// (key, vertex-id) order, dropping stale entries (lazy deletion) as it
// goes. ok is false when the heap is empty.
//
// Monotonicity argument: every returned key is >= every previously
// returned key. Keys pushed after a pop are distances of the form
// fl(d_settled + w) with w >= 0, which is >= d_settled >= lastMin, so no
// entry ever lands below lastMin and the bucket-0 / redistribute
// discipline is sound.
//
//hfc:hotpath budget=0
func (s *CSRScratch) pop() (radixItem, bool) {
	for s.live > 0 {
		// Bucket 0 holds entries with key == lastMin — already minimal.
		// Among equal keys the smallest vertex id pops first (canonical
		// tie-break); entries here are never stale, because a stale entry
		// would imply dist[v] < lastMin, contradicting monotonicity.
		if b0 := s.buckets[0]; len(b0) > 0 {
			mi := 0
			for i := 1; i < len(b0); i++ {
				if b0[i].v < b0[mi].v {
					mi = i
				}
			}
			it := b0[mi]
			b0[mi] = b0[len(b0)-1]
			s.buckets[0] = b0[:len(b0)-1]
			s.live--
			return it, true
		}
		// Find the first non-empty bucket, discard stale entries, and
		// redistribute the rest relative to the new minimum.
		for b := 1; b < len(s.buckets); b++ {
			bk := s.buckets[b]
			if len(bk) == 0 {
				continue
			}
			// First pass: drop stale entries in place.
			kept := bk[:0]
			for _, it := range bk {
				if s.done[it.v] || it.key != math.Float64bits(s.dist[it.v]) {
					s.live--
					continue
				}
				//hfcvet:ignore hotalloc in-place compaction: kept aliases bk's backing and never outgrows it
				kept = append(kept, it)
			}
			s.buckets[b] = kept
			if len(kept) == 0 {
				continue
			}
			// Second pass: find the canonical minimum (key, then id).
			mi := 0
			for i := 1; i < len(kept); i++ {
				if kept[i].key < kept[mi].key ||
					(kept[i].key == kept[mi].key && kept[i].v < kept[mi].v) {
					mi = i
				}
			}
			it := kept[mi]
			s.lastMin = it.key
			kept[mi] = kept[len(kept)-1]
			kept = kept[:len(kept)-1]
			// Redistribute survivors against the new lastMin; each moves
			// to a strictly lower bucket (its highest differing bit with
			// the new minimum is below b), so total work amortizes to
			// O(entries * 64).
			for _, r := range kept {
				nb := s.bucketFor(r.key)
				//hfcvet:ignore hotalloc bucket slices retain capacity across runs; steady-state append never grows
				s.buckets[nb] = append(s.buckets[nb], r)
			}
			s.buckets[b] = bk[:0]
			s.live--
			return it, true
		}
		break
	}
	var zero radixItem
	return zero, false
}

// DijkstraInto computes shortest paths from source into the scratch using
// the monotone radix heap. Distances are bit-identical to the binary-heap
// (*Graph).Dijkstra: both relax with strict <, and with non-negative
// weights the final dist values are independent of settle order (ties
// cannot improve each other because fl(d+w) >= d). Parents are the
// canonical choice under the (dist, vertex-id) settle order with strict-<
// relaxation. The settled inner loop stays allocation-free once the
// scratch has grown to the graph's size.
//
//hfc:hotpath budget=0
func (c *CSR) DijkstraInto(source int, sc *CSRScratch) error {
	if source < 0 || source >= c.n {
		//hfcvet:ignore hotalloc cold validation path, runs at most once per call before the loop
		return fmt.Errorf("graph: source %d out of range [0,%d)", source, c.n)
	}
	sc.reset(c.n)
	sc.dist[source] = 0
	sc.push(0, int32(source))
	for {
		it, ok := sc.pop()
		if !ok {
			break
		}
		v := it.v
		if sc.done[v] {
			continue
		}
		sc.done[v] = true
		dv := sc.dist[v]
		for i := c.off[v]; i < c.off[v+1]; i++ {
			u := c.to[i]
			if nd := dv + c.w[i]; nd < sc.dist[u] {
				sc.dist[u] = nd
				sc.parent[u] = v
				sc.push(math.Float64bits(nd), u)
			}
		}
	}
	return nil
}

// Dijkstra is the allocating convenience wrapper: it runs DijkstraInto on
// a fresh scratch and converts the result to the PathResult shape the
// pointer-graph API returns. Callers on a hot path should hold a
// CSRScratch and use DijkstraInto.
func (c *CSR) Dijkstra(source int) (*PathResult, error) {
	sc := NewCSRScratch()
	if err := c.DijkstraInto(source, sc); err != nil {
		return nil, err
	}
	return sc.result(source), nil
}

// result copies the scratch state into an independent PathResult.
func (s *CSRScratch) result(source int) *PathResult {
	dist := append([]float64(nil), s.dist...)
	parent := make([]int, len(s.parent))
	for i, p := range s.parent {
		parent[i] = int(p)
	}
	return &PathResult{Source: source, Dist: dist, Parent: parent}
}
